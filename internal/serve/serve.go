// Package serve is the JSON-over-HTTP front-end of the PAWS pipeline: a
// Server wraps a paws.Service holding pre-loaded (typically persisted)
// models and exposes
//
//	POST /v1/predict   — batched detection-probability scoring, by raw
//	                     feature vectors or by park cell ids
//	GET|POST /v1/riskmap — park-wide risk + uncertainty maps at one planned
//	                     effort, behind a bounded LRU response cache
//	POST /v1/plan      — a robust patrol plan (effort map + executable
//	                     routes) for one patrol post
//	POST /v1/simulate  — a closed-loop multi-season policy comparison
//	                     (Service.Simulate): PAWS vs baselines against a
//	                     responsive poacher
//	GET /v1/models     — discovery: the registered models and their serving
//	                     context (kind, park, feature width, generation,
//	                     provenance: memory-trained vs fleet store)
//	GET /healthz       — liveness plus the registered model names
//	GET /statusz       — replica load report (job queue depth, mean job
//	                     cost, admission state, riskmap cache hit rates) —
//	                     the signal pawsgate's least-loaded routing polls
//
// # Async jobs
//
// The long-running half of the API is job-based (internal/job): instead of
// holding a connection open for minutes, clients submit work, watch a
// typed progress-event stream, and fetch the result when it is ready:
//
//	POST   /v1/jobs             — submit (kinds: simulate, campaign, train,
//	                              table2, riskmap); returns the job snapshot
//	GET    /v1/jobs             — list retained jobs
//	GET    /v1/jobs/{id}        — job snapshot (state, timestamps, error)
//	GET    /v1/jobs/{id}/events — NDJSON progress stream, replayable via
//	                              ?from=N, safe on client disconnect
//	GET    /v1/jobs/{id}/result — the result, byte-identical to the
//	                              synchronous endpoint's response
//	DELETE /v1/jobs/{id}        — cancel (queued or running)
//
// A completed train job registers its model into the Service registry, so
// remote train→serve works over plain HTTP. The synchronous /v1/simulate
// endpoint is a thin wrapper over a one-shot job (Manager.Run), so both
// paths share one compute implementation and the same concurrency bound.
//
// Every request runs under the request context, optionally bounded by
// Config.RequestTimeout and per-request timeout_ms: deadlines reach
// mid-sweep into batch prediction and map generation (see internal/par), so
// an expired request aborts early with 504 instead of burning the worker
// pool on an answer nobody is waiting for. Errors use a structured
// envelope, {"error": {"code": …, "message": …}}, with machine-readable
// codes (bad_request, unknown_model, unknown_job, deadline, canceled,
// conflict, shutting_down, overloaded). Job submissions additionally pass
// an admission gate (Config.AdmissionBudget / AdmissionMaxQueue): once the
// estimated backlog exceeds the budget, submissions are shed with 429 +
// Retry-After instead of queueing work the replica cannot serve in time.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"paws"
	"paws/internal/env"
	"paws/internal/job"
	"paws/internal/obs"
	"paws/internal/sim"
)

// Config tunes a Server.
type Config struct {
	// RequestTimeout bounds every request's context (0 = unbounded).
	// Requests may tighten it further with "timeout_ms" but never widen it.
	// Async job submissions are exempt: a job outlives its submit request
	// by design (bound one with its own timeout_ms instead).
	RequestTimeout time.Duration
	// RiskMapCacheSize bounds the riskmap LRU (default 64; negative
	// disables caching).
	RiskMapCacheSize int
	// JobWorkers bounds concurrently *running* jobs, including the one-shot
	// jobs behind synchronous /v1/simulate. 0 selects the default of 4;
	// negative means one slot per available CPU (par.Workers semantics).
	// Excess jobs queue FIFO.
	JobWorkers int
	// JobResultTTL bounds how long finished job results are retained
	// (default 15m; negative disables TTL eviction).
	JobResultTTL time.Duration
	// JobMaxRetained bounds how many finished jobs are retained (default
	// 64; the oldest-finished evict first).
	JobMaxRetained int
	// ReplicaID names this replica in a fleet. Non-empty, it namespaces job
	// IDs ("j-<replica>-000001") so a routing proxy (pawsgate) can tell which
	// replica owns a job, and it is reported by /statusz. Empty keeps the
	// single-process ID format.
	ReplicaID string
	// AdmissionBudget bounds the estimated job backlog: when (queued +
	// running) × mean job runtime exceeds it, job submissions (async and the
	// one-shot job behind synchronous /v1/simulate) are rejected with a
	// structured 429 ("overloaded") carrying a Retry-After estimate, instead
	// of quietly queueing minutes of work. 0 disables backlog admission
	// control.
	AdmissionBudget time.Duration
	// AdmissionMaxQueue bounds the queue outright: at or beyond this many
	// queued jobs, submissions are rejected with 429 regardless of the
	// backlog estimate (which needs at least one completed job to be
	// non-zero). 0 disables the bound.
	AdmissionMaxQueue int
	// TraceCapacity bounds the /tracez flight recorder: how many completed
	// traces are retained, newest first (default 64).
	TraceCapacity int
	// EnvTTL bounds how long idle /v1/envs sessions are retained (default
	// 15m; negative disables TTL eviction).
	EnvTTL time.Duration
	// EnvMaxSessions bounds retained /v1/envs sessions (default 64). At the
	// bound, creates are shed with a structured 429 + Retry-After once no
	// finished session can be evicted.
	EnvMaxSessions int
}

// Server is the HTTP layer over a paws.Service. It is an http.Handler.
type Server struct {
	svc     *paws.Service
	cfg     Config
	mux     *http.ServeMux
	cache   *lruCache
	jobs    *job.Manager
	envs    *env.Manager
	metrics *serverMetrics
	tracer  *obs.Recorder
}

// New builds a Server over a Service whose models are already registered
// (models added to the Service later are picked up automatically — the
// registry is read per request).
func New(svc *paws.Service, cfg Config) *Server {
	if cfg.RiskMapCacheSize == 0 {
		cfg.RiskMapCacheSize = 64
	}
	if cfg.JobWorkers == 0 {
		cfg.JobWorkers = 4
	}
	s := &Server{
		svc:   svc,
		cfg:   cfg,
		mux:   http.NewServeMux(),
		cache: newLRU(cfg.RiskMapCacheSize),
		jobs: job.NewManager(job.Config{
			Workers:     cfg.JobWorkers,
			ResultTTL:   cfg.JobResultTTL,
			MaxRetained: cfg.JobMaxRetained,
			IDPrefix:    cfg.ReplicaID,
		}),
		envs: env.NewManager(env.ManagerConfig{
			TTL:         cfg.EnvTTL,
			MaxSessions: cfg.EnvMaxSessions,
			IDPrefix:    cfg.ReplicaID,
		}),
		tracer: obs.NewRecorder(cfg.TraceCapacity),
	}
	s.metrics = newServerMetrics(s)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("GET /v1/riskmap", s.handleRiskMap)
	s.mux.HandleFunc("POST /v1/riskmap", s.handleRiskMap)
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/envs", s.handleEnvCreate)
	s.mux.HandleFunc("POST /v1/envs/{id}/step", s.handleEnvStep)
	s.mux.HandleFunc("GET /v1/envs/{id}", s.handleEnvGet)
	s.mux.HandleFunc("DELETE /v1/envs/{id}", s.handleEnvDelete)
	s.mux.Handle("GET /metricsz", s.metrics.registry.Handler())
	s.mux.Handle("GET /tracez", s.tracer.Handler())
	return s
}

// Close drains the job and env layers: submissions and session creates
// stop, queued and running jobs finish, in-flight env steps complete (or,
// once ctx expires, are canceled and awaited), and retained sessions are
// dropped. Call it after http.Server.Shutdown so a graceful pawsd exit
// never abandons work mid-run.
func (s *Server) Close(ctx context.Context) error {
	err := s.jobs.Shutdown(ctx)
	if err2 := s.envs.Shutdown(ctx); err == nil {
		err = err2
	}
	return err
}

// requestCtx applies the server-wide and per-request deadlines.
func (s *Server) requestCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if s.cfg.RequestTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
	}
	if timeoutMS > 0 {
		tighter, cancel2 := context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		prev := cancel
		ctx, cancel = tighter, func() { cancel2(); prev() }
	}
	return ctx, cancel
}

// Machine-readable error codes of the structured error envelope. Clients
// branch on Code; Message is for humans and carries no stability promise.
const (
	CodeBadRequest   = "bad_request"
	CodeUnknownModel = "unknown_model"
	CodeUnknownJob   = "unknown_job"
	CodeDeadline     = "deadline"
	CodeCanceled     = "canceled"
	CodeConflict     = "conflict"
	CodeShuttingDown = "shutting_down"
	CodeOverloaded   = "overloaded"
)

// overloadedError is the admission-control rejection: the replica's job
// backlog exceeds its configured budget. It renders as a structured 429
// with a Retry-After header estimating when the backlog should have
// drained below the budget.
type overloadedError struct {
	retryAfter time.Duration
	msg        string
}

func (e *overloadedError) Error() string { return e.msg }

// RetryAfterSeconds is the Retry-After value (whole seconds, at least 1).
func (e *overloadedError) RetryAfterSeconds() int {
	secs := int(math.Ceil(e.retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// ErrorDetail is the structured payload of every non-2xx response.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// TraceID echoes the response's X-Paws-Trace header so a shed or
	// timed-out request can be correlated with server-side traces even
	// when only the body was logged.
	TraceID string `json:"trace_id,omitempty"`
}

// errorResponse is the uniform error body: {"error":{"code":…,"message":…}}.
type errorResponse struct {
	Error ErrorDetail `json:"error"`
}

// writeJSON encodes v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorStatus classifies an error into its transport status and envelope
// code: unknown model/job → 404, deadline → 504, canceled → 499 (nginx
// convention), result not ready → 409, draining → 503, anything else the
// service rejected → 400.
func errorStatus(err error) (int, string) {
	var ov *overloadedError
	switch {
	case errors.As(err, &ov):
		return http.StatusTooManyRequests, CodeOverloaded
	case errors.Is(err, paws.ErrUnknownModel):
		return http.StatusNotFound, CodeUnknownModel
	case errors.Is(err, job.ErrUnknownJob):
		return http.StatusNotFound, CodeUnknownJob
	case errors.Is(err, job.ErrNotFinished):
		return http.StatusConflict, CodeConflict
	case errors.Is(err, job.ErrShuttingDown):
		return http.StatusServiceUnavailable, CodeShuttingDown
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadline
	case errors.Is(err, context.Canceled):
		return 499, CodeCanceled
	default:
		return http.StatusBadRequest, CodeBadRequest
	}
}

// writeErr renders an error as the structured envelope. Admission
// rejections additionally carry a Retry-After header so well-behaved
// clients (and pawsgate) know when to come back.
func writeErr(w http.ResponseWriter, err error) {
	status, code := errorStatus(err)
	var ov *overloadedError
	if errors.As(err, &ov) {
		w.Header().Set("Retry-After", strconv.Itoa(ov.RetryAfterSeconds()))
	}
	writeJSON(w, status, errorResponse{Error: ErrorDetail{
		Code:    code,
		Message: err.Error(),
		TraceID: w.Header().Get(obs.TraceHeader),
	}})
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------- healthz

type healthResponse struct {
	Status string   `json:"status"`
	Models []string `json:"models"`
	// Jobs is the number of queued or running async jobs.
	Jobs int `json:"jobs"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Models: s.svc.ModelNames(), Jobs: s.jobs.Active()})
}

// ------------------------------------------------------------- /v1/models

// ModelInfo describes one registered model: what it is and the serving
// context it answers queries against.
type ModelInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Park is the spec of the park the model serves ("MFNP", "rand-16", …).
	Park  string `json:"park"`
	Cells int    `json:"cells"`
	// FeatureDim is the feature-vector width /v1/predict expects.
	FeatureDim int `json:"feature_dim"`
	// Posts is the number of patrol posts /v1/plan accepts for this park.
	Posts int `json:"posts"`
	// Generation is the registry registration number (bumps when a name is
	// re-registered); cache keys should include it.
	Generation uint64 `json:"generation"`
	// Source reports where the model came from: "memory" (trained or loaded
	// by this replica) or "store" (pulled from the shared fleet store).
	Source string `json:"source"`
	// Hash is the model artifact's content hash in the fleet store (empty
	// when the model was never published).
	Hash string `json:"hash,omitempty"`
}

type modelsResponse struct {
	Models []ModelInfo `json:"models"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	resp := modelsResponse{Models: []ModelInfo{}}
	for _, sm := range s.svc.ServedModels() {
		source, hash, _ := sm.Provenance()
		resp.Models = append(resp.Models, ModelInfo{
			Name:       sm.Name,
			Kind:       sm.Model.Kind.String(),
			Park:       sm.Park().Name,
			Cells:      sm.Park().Grid.NumCells(),
			Posts:      len(sm.Park().Posts),
			FeatureDim: sm.FeatureDim(),
			Generation: sm.Generation(),
			Source:     source,
			Hash:       hash,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ------------------------------------------------------------- /v1/predict

// PredictRequest scores a batch at one planned patrol effort. Exactly one
// of Features (raw vectors, park features + previous patrol coverage) or
// Cells (park cell ids, scored on the model's frozen serving features) must
// be set.
type PredictRequest struct {
	Model     string      `json:"model"`
	Effort    float64     `json:"effort"`
	Features  [][]float64 `json:"features,omitempty"`
	Cells     []int       `json:"cells,omitempty"`
	Variance  bool        `json:"variance,omitempty"`
	TimeoutMS int         `json:"timeout_ms,omitempty"`
}

// PredictResponse carries one probability (and optionally one variance) per
// requested row, in request order.
type PredictResponse struct {
	Model     string    `json:"model"`
	Effort    float64   `json:"effort"`
	Probs     []float64 `json:"probs"`
	Variances []float64 `json:"variances,omitempty"`
}

// maxPredictRows bounds one request's batch so a single client cannot queue
// unbounded work behind one POST.
const maxPredictRows = 100_000

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Model == "" {
		req.Model = "default"
	}
	if (len(req.Features) == 0) == (len(req.Cells) == 0) {
		writeErr(w, errors.New("exactly one of features or cells must be non-empty"))
		return
	}
	if n := len(req.Features) + len(req.Cells); n > maxPredictRows {
		writeErr(w, fmt.Errorf("batch of %d rows exceeds the limit of %d", n, maxPredictRows))
		return
	}
	if req.Effort < 0 || math.IsNaN(req.Effort) || math.IsInf(req.Effort, 0) {
		writeErr(w, fmt.Errorf("effort %v must be a non-negative finite number", req.Effort))
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	resp := PredictResponse{Model: req.Model, Effort: req.Effort}
	var err error
	switch {
	case len(req.Cells) > 0:
		if req.Variance {
			writeErr(w, errors.New("variance is only available for feature-vector requests"))
			return
		}
		resp.Probs, err = s.svc.PredictCells(ctx, req.Model, req.Cells, req.Effort)
	case req.Variance:
		resp.Probs, resp.Variances, err = s.svc.PredictWithVariance(ctx, req.Model, req.Features, req.Effort)
	default:
		resp.Probs, err = s.svc.Predict(ctx, req.Model, req.Features, req.Effort)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ------------------------------------------------------------- /v1/riskmap

// RiskMapRequest asks for the park-wide maps at one planned effort.
type RiskMapRequest struct {
	Model     string  `json:"model"`
	Effort    float64 `json:"effort"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
}

// RiskMapResponse is the full-park raster pair plus the grid geometry
// needed to render it.
type RiskMapResponse struct {
	Model       string    `json:"model"`
	Effort      float64   `json:"effort"`
	Width       int       `json:"width"`
	Height      int       `json:"height"`
	Cells       int       `json:"cells"`
	Risk        []float64 `json:"risk"`
	Uncertainty []float64 `json:"uncertainty"`
	Cached      bool      `json:"cached"`
}

func (s *Server) handleRiskMap(w http.ResponseWriter, r *http.Request) {
	var req RiskMapRequest
	if r.Method == http.MethodGet {
		req.Model = r.URL.Query().Get("model")
		if v := r.URL.Query().Get("effort"); v != "" {
			e, err := strconv.ParseFloat(v, 64)
			if err != nil {
				writeErr(w, fmt.Errorf("invalid effort %q", v))
				return
			}
			req.Effort = e
		}
		if v := r.URL.Query().Get("timeout_ms"); v != "" {
			t, err := strconv.Atoi(v)
			if err != nil {
				writeErr(w, fmt.Errorf("invalid timeout_ms %q", v))
				return
			}
			req.TimeoutMS = t
		}
	} else if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	resp, err := s.computeRiskMap(ctx, req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// checkRiskMap validates a riskmap request, fills defaults and resolves
// the model — shared by the synchronous endpoint and the riskmap job
// kind's submit-time validation.
func (s *Server) checkRiskMap(req RiskMapRequest) (RiskMapRequest, *paws.ServedModel, error) {
	if req.Model == "" {
		req.Model = "default"
	}
	if req.Effort <= 0 || math.IsNaN(req.Effort) || math.IsInf(req.Effort, 0) {
		return req, nil, fmt.Errorf("effort %v must be a positive finite number", req.Effort)
	}
	sm, ok := s.svc.Served(req.Model)
	if !ok {
		return req, nil, fmt.Errorf("%w %q", paws.ErrUnknownModel, req.Model)
	}
	return req, sm, nil
}

// computeRiskMap validates a riskmap request and answers it through the
// LRU — the single compute path shared by the synchronous endpoint and the
// riskmap job kind.
func (s *Server) computeRiskMap(ctx context.Context, req RiskMapRequest) (RiskMapResponse, error) {
	req, sm, err := s.checkRiskMap(req)
	if err != nil {
		return RiskMapResponse{}, err
	}
	// The cache key pins the model *instance* via its registration
	// generation (re-registering a name bumps it, so stale maps are never
	// served; a heap address could be reused after GC), and the effort's
	// exact bits (no float formatting collisions).
	key := fmt.Sprintf("%s|%d|%016x", req.Model, sm.Generation(), math.Float64bits(req.Effort))
	if v, ok := s.cache.get(key); ok {
		resp := v.(RiskMapResponse)
		resp.Cached = true
		return resp, nil
	}
	// Compute from the instance the key was derived from — re-resolving
	// the name here could race with a concurrent re-registration and file
	// one generation's maps under another's key.
	endSpan := obs.StartSpan(ctx, "riskmap", req.Model)
	risk, unc, err := sm.PlannerModel().MapsCtx(ctx, req.Effort)
	endSpan()
	if err != nil {
		return RiskMapResponse{}, err
	}
	grid := sm.Park().Grid
	resp := RiskMapResponse{
		Model:       req.Model,
		Effort:      req.Effort,
		Width:       grid.W,
		Height:      grid.H,
		Cells:       len(risk),
		Risk:        risk,
		Uncertainty: unc,
	}
	s.cache.add(key, resp)
	return resp, nil
}

// ---------------------------------------------------------------- /v1/plan

// PlanRequest asks for a robust patrol plan around one patrol post.
type PlanRequest struct {
	Model string  `json:"model"`
	Post  int     `json:"post"`
	Beta  float64 `json:"beta"`
	// Optional region / horizon overrides (0 keeps server defaults).
	Radius    int     `json:"radius,omitempty"`
	MaxCells  int     `json:"max_cells,omitempty"`
	T         int     `json:"t,omitempty"`
	K         float64 `json:"k,omitempty"`
	Segments  int     `json:"segments,omitempty"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
	// Hierarchical forces the coarse super-cell targeting pass on or off.
	// Absent, the server decides by park size (paws.HierAutoCells).
	Hierarchical *bool `json:"hierarchical,omitempty"`
}

// PlanResponse is the deployment artifact: planned effort per region cell
// and executable routes, all in park cell ids.
type PlanResponse struct {
	Model     string    `json:"model"`
	Post      int       `json:"post"`
	Beta      float64   `json:"beta"`
	Cells     []int     `json:"cells"`
	Effort    []float64 `json:"effort"`
	Routes    [][]int   `json:"routes"`
	Objective float64   `json:"objective"`
	RuntimeMS float64   `json:"runtime_ms"`
	// Hierarchical reports whether the coarse targeting pass shaped the
	// region (requested explicitly or auto-enabled by park size).
	Hierarchical bool `json:"hierarchical,omitempty"`
}

// ------------------------------------------------------------ /v1/simulate

// SimulateRequest asks for a closed-loop policy-comparison simulation
// (Service.Simulate): play the named patrol policies against a responsive
// poacher on one park for several seasons.
type SimulateRequest struct {
	// Park is a park spec: MFNP, QENP, SWS or rand:<seed>.
	Park string `json:"park"`
	// Seasons is the number of planning seasons (default 4, capped at 12).
	Seasons int `json:"seasons,omitempty"`
	// SeasonMonths is the months per season (default 3, capped at 12).
	SeasonMonths int `json:"season_months,omitempty"`
	// Policies names the policies to compare (default all four).
	Policies []string `json:"policies,omitempty"`
	// Attacker is "static" or "adaptive" (default adaptive).
	Attacker string `json:"attacker,omitempty"`
	// Beta is the paws policy's robustness weight (default 0.9).
	Beta float64 `json:"beta,omitempty"`
	// BudgetKM overrides the per-month patrol budget.
	BudgetKM float64 `json:"budget_km,omitempty"`
	// Seed overrides the service-wide root seed (0 keeps the default). The
	// same park, seed and worker count reproduce the report byte for byte,
	// whether run synchronously or as a job.
	Seed      int64 `json:"seed,omitempty"`
	TimeoutMS int   `json:"timeout_ms,omitempty"`
}

// SimulateResponse is the simulation report: per-policy season logs plus the
// deterministic fixed-width text rendering pawssim prints.
type SimulateResponse struct {
	*sim.Report
	Text string `json:"text"`
}

// Simulation requests run the full closed loop — retraining the paws policy
// every season — so their size is bounded server-side.
const (
	maxSimSeasons      = 12
	maxSimSeasonMonths = 12
	maxSimPolicies     = 8
)

// simulateFn validates a simulate request and lowers it to a job function
// — the single compute path behind both POST /v1/simulate (a one-shot job
// the handler waits on) and the "simulate" job kind. Progress events flow
// from inside the season loop (and the paws policy's per-season training)
// into the job's event stream.
func (s *Server) simulateFn(req SimulateRequest) (job.Fn, error) {
	if req.Seasons > maxSimSeasons {
		return nil, fmt.Errorf("seasons %d exceeds the limit of %d", req.Seasons, maxSimSeasons)
	}
	if req.SeasonMonths > maxSimSeasonMonths {
		return nil, fmt.Errorf("season_months %d exceeds the limit of %d", req.SeasonMonths, maxSimSeasonMonths)
	}
	if len(req.Policies) > maxSimPolicies {
		return nil, fmt.Errorf("%d policies exceed the limit of %d", len(req.Policies), maxSimPolicies)
	}
	if req.Park != "" {
		if err := paws.ValidateParkSpec(req.Park); err != nil {
			return nil, err
		}
	}
	cfg := paws.SimConfig{
		Park:         req.Park,
		Seasons:      req.Seasons,
		SeasonMonths: req.SeasonMonths,
		Policies:     req.Policies,
		Beta:         req.Beta,
		BudgetKM:     req.BudgetKM,
	}
	cfg.Attacker.Kind = req.Attacker
	// Full library-level validation at submit time: negative ranges, beta,
	// unknown policies and attacker kinds fail as a structured 400 here
	// instead of a job doomed to fail at run time.
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return func(ctx context.Context, publish func(job.Event)) (any, error) {
		opts := []paws.Option{paws.WithProgress(progressPublisher(publish))}
		if req.Seed != 0 {
			opts = append(opts, paws.WithSeed(req.Seed))
		}
		rep, err := s.svc.Simulate(ctx, cfg, opts...)
		if err != nil {
			return nil, err
		}
		return SimulateResponse{Report: rep, Text: rep.Format()}, nil
	}, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	// The synchronous endpoint runs a one-shot job on the same worker pool,
	// so it passes through the same admission gate as async submissions.
	if err := s.admitJob(); err != nil {
		writeErr(w, err)
		return
	}
	var req SimulateRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	fn, err := s.simulateFn(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	// One-shot job: same compute path and concurrency bound as the async
	// kind, result discarded after the response is written.
	s.metrics.jobsSubmit.With("simulate").Inc()
	resp, err := s.jobs.Run(ctx, "simulate", s.traceJobFn(r, "simulate", fn))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Model == "" {
		req.Model = "default"
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	var opts []paws.Option
	if req.Radius > 0 || req.MaxCells > 0 {
		opts = append(opts, paws.WithRegionShape(req.Radius, req.MaxCells))
	}
	if req.T > 0 || req.K > 0 || req.Segments > 0 {
		opts = append(opts, paws.WithPlanHorizon(req.T, req.K, req.Segments))
	}
	if req.Hierarchical != nil {
		opts = append(opts, paws.WithHierarchical(*req.Hierarchical))
	}
	res, err := s.svc.Plan(ctx, req.Model, req.Post, req.Beta, opts...)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PlanResponse{
		Model:        res.Model,
		Post:         res.Post,
		Beta:         res.Beta,
		Cells:        res.Cells,
		Effort:       res.Effort,
		Routes:       res.Routes,
		Objective:    res.Objective,
		RuntimeMS:    res.RuntimeMS,
		Hierarchical: res.Hierarchical,
	})
}
