// Package serve is the JSON-over-HTTP front-end of the PAWS pipeline: a
// Server wraps a paws.Service holding pre-loaded (typically persisted)
// models and exposes
//
//	POST /v1/predict   — batched detection-probability scoring, by raw
//	                     feature vectors or by park cell ids
//	GET|POST /v1/riskmap — park-wide risk + uncertainty maps at one planned
//	                     effort, behind a bounded LRU response cache
//	POST /v1/plan      — a robust patrol plan (effort map + executable
//	                     routes) for one patrol post
//	POST /v1/simulate  — a closed-loop multi-season policy comparison
//	                     (Service.Simulate): PAWS vs baselines against a
//	                     responsive poacher
//	GET /healthz       — liveness plus the registered model names
//
// Every request runs under the request context, optionally bounded by
// Config.RequestTimeout and per-request timeout_ms: deadlines reach
// mid-sweep into batch prediction and map generation (see internal/par), so
// an expired request aborts early with 504 instead of burning the worker
// pool on an answer nobody is waiting for.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"paws"
	"paws/internal/sim"
)

// Config tunes a Server.
type Config struct {
	// RequestTimeout bounds every request's context (0 = unbounded).
	// Requests may tighten it further with "timeout_ms" but never widen it.
	RequestTimeout time.Duration
	// RiskMapCacheSize bounds the riskmap LRU (default 64; negative
	// disables caching).
	RiskMapCacheSize int
}

// Server is the HTTP layer over a paws.Service. It is an http.Handler.
type Server struct {
	svc   *paws.Service
	cfg   Config
	mux   *http.ServeMux
	cache *lruCache
}

// New builds a Server over a Service whose models are already registered
// (models added to the Service later are picked up automatically — the
// registry is read per request).
func New(svc *paws.Service, cfg Config) *Server {
	if cfg.RiskMapCacheSize == 0 {
		cfg.RiskMapCacheSize = 64
	}
	s := &Server{svc: svc, cfg: cfg, mux: http.NewServeMux(), cache: newLRU(cfg.RiskMapCacheSize)}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("GET /v1/riskmap", s.handleRiskMap)
	s.mux.HandleFunc("POST /v1/riskmap", s.handleRiskMap)
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// requestCtx applies the server-wide and per-request deadlines.
func (s *Server) requestCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if s.cfg.RequestTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
	}
	if timeoutMS > 0 {
		tighter, cancel2 := context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		prev := cancel
		ctx, cancel = tighter, func() { cancel2(); prev() }
	}
	return ctx, cancel
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// writeJSON encodes v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps an error to its transport status: unknown model → 404,
// deadline → 504, client-gone → 499 (nginx convention), anything else the
// service rejected → 400.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, paws.ErrUnknownModel):
		status = http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------- healthz

type healthResponse struct {
	Status string   `json:"status"`
	Models []string `json:"models"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Models: s.svc.ModelNames()})
}

// ------------------------------------------------------------- /v1/predict

// PredictRequest scores a batch at one planned patrol effort. Exactly one
// of Features (raw vectors, park features + previous patrol coverage) or
// Cells (park cell ids, scored on the model's frozen serving features) must
// be set.
type PredictRequest struct {
	Model     string      `json:"model"`
	Effort    float64     `json:"effort"`
	Features  [][]float64 `json:"features,omitempty"`
	Cells     []int       `json:"cells,omitempty"`
	Variance  bool        `json:"variance,omitempty"`
	TimeoutMS int         `json:"timeout_ms,omitempty"`
}

// PredictResponse carries one probability (and optionally one variance) per
// requested row, in request order.
type PredictResponse struct {
	Model     string    `json:"model"`
	Effort    float64   `json:"effort"`
	Probs     []float64 `json:"probs"`
	Variances []float64 `json:"variances,omitempty"`
}

// maxPredictRows bounds one request's batch so a single client cannot queue
// unbounded work behind one POST.
const maxPredictRows = 100_000

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Model == "" {
		req.Model = "default"
	}
	if (len(req.Features) == 0) == (len(req.Cells) == 0) {
		writeErr(w, errors.New("exactly one of features or cells must be non-empty"))
		return
	}
	if n := len(req.Features) + len(req.Cells); n > maxPredictRows {
		writeErr(w, fmt.Errorf("batch of %d rows exceeds the limit of %d", n, maxPredictRows))
		return
	}
	if req.Effort < 0 || math.IsNaN(req.Effort) || math.IsInf(req.Effort, 0) {
		writeErr(w, fmt.Errorf("effort %v must be a non-negative finite number", req.Effort))
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	resp := PredictResponse{Model: req.Model, Effort: req.Effort}
	var err error
	switch {
	case len(req.Cells) > 0:
		if req.Variance {
			writeErr(w, errors.New("variance is only available for feature-vector requests"))
			return
		}
		resp.Probs, err = s.svc.PredictCells(ctx, req.Model, req.Cells, req.Effort)
	case req.Variance:
		resp.Probs, resp.Variances, err = s.svc.PredictWithVariance(ctx, req.Model, req.Features, req.Effort)
	default:
		resp.Probs, err = s.svc.Predict(ctx, req.Model, req.Features, req.Effort)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ------------------------------------------------------------- /v1/riskmap

// RiskMapRequest asks for the park-wide maps at one planned effort.
type RiskMapRequest struct {
	Model     string  `json:"model"`
	Effort    float64 `json:"effort"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
}

// RiskMapResponse is the full-park raster pair plus the grid geometry
// needed to render it.
type RiskMapResponse struct {
	Model       string    `json:"model"`
	Effort      float64   `json:"effort"`
	Width       int       `json:"width"`
	Height      int       `json:"height"`
	Cells       int       `json:"cells"`
	Risk        []float64 `json:"risk"`
	Uncertainty []float64 `json:"uncertainty"`
	Cached      bool      `json:"cached"`
}

func (s *Server) handleRiskMap(w http.ResponseWriter, r *http.Request) {
	var req RiskMapRequest
	if r.Method == http.MethodGet {
		req.Model = r.URL.Query().Get("model")
		if v := r.URL.Query().Get("effort"); v != "" {
			e, err := strconv.ParseFloat(v, 64)
			if err != nil {
				writeErr(w, fmt.Errorf("invalid effort %q", v))
				return
			}
			req.Effort = e
		}
		if v := r.URL.Query().Get("timeout_ms"); v != "" {
			t, err := strconv.Atoi(v)
			if err != nil {
				writeErr(w, fmt.Errorf("invalid timeout_ms %q", v))
				return
			}
			req.TimeoutMS = t
		}
	} else if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Model == "" {
		req.Model = "default"
	}
	if req.Effort <= 0 || math.IsNaN(req.Effort) || math.IsInf(req.Effort, 0) {
		writeErr(w, fmt.Errorf("effort %v must be a positive finite number", req.Effort))
		return
	}
	sm, ok := s.svc.Served(req.Model)
	if !ok {
		writeErr(w, fmt.Errorf("%w %q", paws.ErrUnknownModel, req.Model))
		return
	}
	// The cache key pins the model *instance* via its registration
	// generation (re-registering a name bumps it, so stale maps are never
	// served; a heap address could be reused after GC), and the effort's
	// exact bits (no float formatting collisions).
	key := fmt.Sprintf("%s|%d|%016x", req.Model, sm.Generation(), math.Float64bits(req.Effort))
	if v, ok := s.cache.get(key); ok {
		resp := v.(RiskMapResponse)
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	risk, unc, err := s.svc.RiskMaps(ctx, req.Model, req.Effort)
	if err != nil {
		writeErr(w, err)
		return
	}
	grid := sm.Park().Grid
	resp := RiskMapResponse{
		Model:       req.Model,
		Effort:      req.Effort,
		Width:       grid.W,
		Height:      grid.H,
		Cells:       len(risk),
		Risk:        risk,
		Uncertainty: unc,
	}
	s.cache.add(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

// ---------------------------------------------------------------- /v1/plan

// PlanRequest asks for a robust patrol plan around one patrol post.
type PlanRequest struct {
	Model string  `json:"model"`
	Post  int     `json:"post"`
	Beta  float64 `json:"beta"`
	// Optional region / horizon overrides (0 keeps server defaults).
	Radius    int     `json:"radius,omitempty"`
	MaxCells  int     `json:"max_cells,omitempty"`
	T         int     `json:"t,omitempty"`
	K         float64 `json:"k,omitempty"`
	Segments  int     `json:"segments,omitempty"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
}

// PlanResponse is the deployment artifact: planned effort per region cell
// and executable routes, all in park cell ids.
type PlanResponse struct {
	Model     string    `json:"model"`
	Post      int       `json:"post"`
	Beta      float64   `json:"beta"`
	Cells     []int     `json:"cells"`
	Effort    []float64 `json:"effort"`
	Routes    [][]int   `json:"routes"`
	Objective float64   `json:"objective"`
	RuntimeMS float64   `json:"runtime_ms"`
}

// ------------------------------------------------------------ /v1/simulate

// SimulateRequest asks for a closed-loop policy-comparison simulation
// (Service.Simulate): play the named patrol policies against a responsive
// poacher on one park for several seasons.
type SimulateRequest struct {
	// Park is a park spec: MFNP, QENP, SWS or rand:<seed>.
	Park string `json:"park"`
	// Seasons is the number of planning seasons (default 4, capped at 12).
	Seasons int `json:"seasons,omitempty"`
	// SeasonMonths is the months per season (default 3, capped at 12).
	SeasonMonths int `json:"season_months,omitempty"`
	// Policies names the policies to compare (default all four).
	Policies []string `json:"policies,omitempty"`
	// Attacker is "static" or "adaptive" (default adaptive).
	Attacker string `json:"attacker,omitempty"`
	// Beta is the paws policy's robustness weight (default 0.9).
	Beta float64 `json:"beta,omitempty"`
	// BudgetKM overrides the per-month patrol budget.
	BudgetKM  float64 `json:"budget_km,omitempty"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
}

// SimulateResponse is the simulation report: per-policy season logs plus the
// deterministic fixed-width text rendering pawssim prints.
type SimulateResponse struct {
	*sim.Report
	Text string `json:"text"`
}

// Simulation requests run the full closed loop — retraining the paws policy
// every season — so their size is bounded server-side.
const (
	maxSimSeasons      = 12
	maxSimSeasonMonths = 12
	maxSimPolicies     = 8
)

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Seasons > maxSimSeasons {
		writeErr(w, fmt.Errorf("seasons %d exceeds the limit of %d", req.Seasons, maxSimSeasons))
		return
	}
	if req.SeasonMonths > maxSimSeasonMonths {
		writeErr(w, fmt.Errorf("season_months %d exceeds the limit of %d", req.SeasonMonths, maxSimSeasonMonths))
		return
	}
	if len(req.Policies) > maxSimPolicies {
		writeErr(w, fmt.Errorf("%d policies exceed the limit of %d", len(req.Policies), maxSimPolicies))
		return
	}
	if req.Beta < 0 || req.Beta > 1 || math.IsNaN(req.Beta) {
		writeErr(w, fmt.Errorf("beta %v out of range [0, 1]", req.Beta))
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	cfg := paws.SimConfig{
		Park:         req.Park,
		Seasons:      req.Seasons,
		SeasonMonths: req.SeasonMonths,
		Policies:     req.Policies,
		Beta:         req.Beta,
		BudgetKM:     req.BudgetKM,
	}
	cfg.Attacker.Kind = req.Attacker
	rep, err := s.svc.Simulate(ctx, cfg)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SimulateResponse{Report: rep, Text: rep.Format()})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Model == "" {
		req.Model = "default"
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	var opts []paws.Option
	if req.Radius > 0 || req.MaxCells > 0 {
		opts = append(opts, paws.WithRegionShape(req.Radius, req.MaxCells))
	}
	if req.T > 0 || req.K > 0 || req.Segments > 0 {
		opts = append(opts, paws.WithPlanHorizon(req.T, req.K, req.Segments))
	}
	res, err := s.svc.Plan(ctx, req.Model, req.Post, req.Beta, opts...)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PlanResponse{
		Model:     res.Model,
		Post:      res.Post,
		Beta:      res.Beta,
		Cells:     res.Cells,
		Effort:    res.Effort,
		Routes:    res.Routes,
		Objective: res.Objective,
		RuntimeMS: res.RuntimeMS,
	})
}
