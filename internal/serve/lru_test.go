package serve

import (
	"fmt"
	"sync"
	"testing"
)

// TestLRUConcurrentGetAdd hammers one bounded cache from many goroutines
// (run under -race in CI): the bound must hold throughout, values must
// never cross keys, and the cache must stay internally consistent (every
// get returns either a miss or the exact value stored for that key).
func TestLRUConcurrentGetAdd(t *testing.T) {
	const (
		max        = 4
		keys       = 10
		goroutines = 8
		ops        = 500
	)
	c := newLRU(max)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := (g + i) % keys
				key := fmt.Sprintf("k%d", k)
				if i%3 == 0 {
					c.add(key, k)
					continue
				}
				if v, ok := c.get(key); ok && v.(int) != k {
					t.Errorf("key %s returned value %v", key, v)
					return
				}
				if n := c.len(); n > max {
					t.Errorf("cache grew to %d entries (max %d)", n, max)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.len(); n > max {
		t.Fatalf("cache holds %d entries after the storm (max %d)", n, max)
	}
}

// TestLRUEvictionOrder pins the recency discipline: eviction removes the
// least recently *used* entry, where both get and re-add refresh recency.
func TestLRUEvictionOrder(t *testing.T) {
	c := newLRU(3)
	c.add("a", 1)
	c.add("b", 2)
	c.add("c", 3)
	// Recency now c > b > a. Touch a via get, then b via re-add.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.add("b", 22)
	// Recency now b > a > c; adding d must evict c.
	c.add("d", 4)
	if _, ok := c.get("c"); ok {
		t.Fatal("c survived eviction (least recently used)")
	}
	// Verify survivors in a fixed order (each get refreshes recency, so the
	// order below re-establishes d > b > a going into the next eviction).
	for _, kv := range []struct {
		key  string
		want int
	}{{"a", 1}, {"b", 22}, {"d", 4}} {
		v, ok := c.get(kv.key)
		if !ok || v.(int) != kv.want {
			t.Fatalf("key %s = %v, %v; want %d", kv.key, v, ok, kv.want)
		}
	}
	// Recency is now d > b > a; the next insert evicts a again.
	c.add("e", 5)
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived the second eviction")
	}
	if c.len() != 3 {
		t.Fatalf("len %d, want 3", c.len())
	}
}
