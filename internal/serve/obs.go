package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"paws/internal/job"
	"paws/internal/obs"
)

// This file is the observability wiring of the server: per-endpoint HTTP
// metrics, live gauges over the job manager and the riskmap LRU
// (GET /metricsz), and the request/job trace flight recorder
// (GET /tracez). Everything here is strictly observational — responses
// are byte-identical with or without it (only the X-Paws-Trace header
// and the trace_id field of error envelopes are added, neither of which
// feeds back into compute).

// serverMetrics bundles the pawsd instruments.
type serverMetrics struct {
	registry    *obs.Registry
	httpReqs    obs.CounterVec   // endpoint, method, code
	httpSeconds obs.HistogramVec // endpoint
	jobsShed    obs.Counter
	jobsSubmit  obs.CounterVec // kind
	envsShed    obs.Counter
	envSteps    obs.Histogram
}

// newServerMetrics registers the instrument set over live server state:
// counters update on the hot path, gauges read the job manager and the
// LRU at scrape time so there is no second copy of either.
func newServerMetrics(s *Server) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		registry: r,
		httpReqs: r.CounterVec("paws_http_requests_total",
			"HTTP requests by route pattern, method and status code.",
			"endpoint", "method", "code"),
		httpSeconds: r.HistogramVec("paws_http_request_seconds",
			"HTTP request latency in seconds by route pattern.",
			nil, "endpoint"),
		jobsShed: r.Counter("paws_jobs_shed_total",
			"Job submissions rejected by admission control (429)."),
		jobsSubmit: r.CounterVec("paws_jobs_submitted_total",
			"Jobs admitted to the queue by kind (includes one-shot synchronous simulate).",
			"kind"),
		envsShed: r.Counter("paws_env_sessions_shed_total",
			"Env session creates rejected by the session-capacity bound (429)."),
		envSteps: r.Histogram("paws_env_step_seconds",
			"Env session step latency in seconds (one season of compute).", nil),
	}
	r.CounterFunc("paws_riskmap_cache_hits_total",
		"Riskmap LRU lookups served from cache.",
		func() float64 { return float64(s.cache.stats().Hits) })
	r.CounterFunc("paws_riskmap_cache_misses_total",
		"Riskmap LRU lookups that had to compute the maps.",
		func() float64 { return float64(s.cache.stats().Misses) })
	r.CounterFunc("paws_riskmap_cache_evictions_total",
		"Riskmap LRU entries evicted by the size bound.",
		func() float64 { return float64(s.cache.stats().Evictions) })
	r.GaugeFunc("paws_riskmap_cache_entries",
		"Riskmap LRU current entry count.",
		func() float64 { return float64(s.cache.stats().Size) })
	r.GaugeFunc("paws_jobs_queued",
		"Jobs waiting for a worker slot.",
		func() float64 { return float64(s.jobs.Stats().Queued) })
	r.GaugeFunc("paws_jobs_running",
		"Jobs currently executing.",
		func() float64 { return float64(s.jobs.Stats().Running) })
	r.CounterFunc("paws_jobs_completed_total",
		"Jobs that reached a terminal state.",
		func() float64 { return float64(s.jobs.Stats().Completed) })
	r.GaugeFunc("paws_job_mean_seconds",
		"EWMA of job runtime in seconds (0 until the first job completes).",
		func() float64 { return s.jobs.Stats().MeanJobSeconds })
	r.GaugeFunc("paws_env_sessions_active",
		"Env sessions whose episode is not yet done.",
		func() float64 { return float64(s.envs.Stats().Active) })
	r.GaugeFunc("paws_env_sessions",
		"Env sessions currently retained (live + finished).",
		func() float64 { return float64(s.envs.Stats().Sessions) })
	r.CounterFunc("paws_env_sessions_created_total",
		"Env sessions created.",
		func() float64 { return float64(s.envs.Stats().Created) })
	r.CounterFunc("paws_env_steps_total",
		"Env seasons stepped.",
		func() float64 { return float64(s.envs.Stats().Steps) })
	return m
}

// MetricsHandler serves the replica's /metricsz (also mountable on the
// debug listener, like StatuszHandler).
func (s *Server) MetricsHandler() http.Handler { return s.metrics.registry.Handler() }

// TracezHandler serves the replica's /tracez flight recorder.
func (s *Server) TracezHandler() http.Handler { return s.tracer.Handler() }

// endpointLabel maps a request to its registered route pattern
// ("/v1/jobs/{id}", not the concrete path) so metric cardinality stays
// bounded; unroutable requests collapse into "other".
func (s *Server) endpointLabel(r *http.Request) string {
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		return "other"
	}
	if _, path, ok := strings.Cut(pattern, " "); ok {
		return path
	}
	return pattern
}

// opsEndpoints are polled by gates and scrapers; they get metrics and
// the trace header like everything else but are not recorded into the
// /tracez ring, which would otherwise hold nothing but health polls.
var opsEndpoints = map[string]bool{
	"/healthz":  true,
	"/statusz":  true,
	"/metricsz": true,
	"/tracez":   true,
}

// ServeHTTP implements http.Handler: the observability middleware
// around the route mux. Every response carries X-Paws-Trace (adopting
// the inbound ID when pawsgate minted one); /v1 requests additionally
// record a trace with any compute spans the handler emitted under the
// request context.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	endpoint := s.endpointLabel(r)
	sw := &obs.StatusWriter{ResponseWriter: w}
	inbound := r.Header.Get(obs.TraceHeader)
	var tr *obs.Trace
	if opsEndpoints[endpoint] {
		id := inbound
		if id == "" {
			id = obs.MintID()
		}
		sw.Header().Set(obs.TraceHeader, id)
	} else {
		tr = s.tracer.Start(inbound, r.Method+" "+endpoint)
		sw.Header().Set(obs.TraceHeader, tr.ID())
		r = r.WithContext(obs.WithTrace(r.Context(), tr))
	}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	code := sw.StatusCode()
	s.metrics.httpReqs.With(endpoint, r.Method, strconv.Itoa(code)).Inc()
	s.metrics.httpSeconds.With(endpoint).Observe(time.Since(start).Seconds())
	tr.Finish(strconv.Itoa(code))
}

// traceJobFn wraps a job function so its run records a trace of its
// own, reusing the submitting request's trace ID: the /tracez entry for
// the HTTP submit and the one for the job's compute stages correlate by
// ID across the queue boundary (jobs run on a fresh context, so the
// request trace cannot flow there by ctx alone).
func (s *Server) traceJobFn(r *http.Request, kind string, fn job.Fn) job.Fn {
	id := obs.TraceFrom(r.Context()).ID()
	return func(ctx context.Context, publish func(job.Event)) (any, error) {
		tr := s.tracer.Start(id, "job:"+kind)
		res, err := fn(obs.WithTrace(ctx, tr), publish)
		tr.Finish(jobTraceStatus(err))
		return res, err
	}
}

func jobTraceStatus(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}
