package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"paws"
)

// fixture builds one served GPB-iW model shared by every test (training is
// the expensive part; the server itself is cheap).
var (
	fixtureOnce sync.Once
	fixtureSvc  *paws.Service
	fixtureErr  error
	fixtureN    int // park cells
)

func testService(t *testing.T) *paws.Service {
	t.Helper()
	fixtureOnce.Do(func() {
		ctx := context.Background()
		svc := paws.NewService(
			paws.WithWorkers(2),
			paws.WithSeed(7),
			paws.WithThresholds(4),
			paws.WithEnsembleSize(4),
			paws.WithGPMaxTrain(50),
			paws.WithTreeDepth(6),
		)
		sc, err := svc.Scenario(ctx, "MFNP", paws.WithScale(paws.ScaleSmall))
		if err != nil {
			fixtureErr = err
			return
		}
		year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
		split, err := sc.Data.SplitByTestYear(year, 3)
		if err != nil {
			fixtureErr = err
			return
		}
		m, err := svc.Train(ctx, split.Train, paws.WithKind(paws.GPBiW))
		if err != nil {
			fixtureErr = err
			return
		}
		testFrom, _ := sc.Data.StepsForYear(year)
		if _, err := svc.AddModel(ctx, "default", m, sc.Data, testFrom-1); err != nil {
			fixtureErr = err
			return
		}
		fixtureSvc = svc
		fixtureN = sc.Park.Grid.NumCells()
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureSvc
}

func testServer(t *testing.T, cfg Config) *Server {
	return New(testService(t), cfg)
}

// do runs one request through the handler and decodes the JSON response.
func do(t *testing.T, s *Server, method, path string, body any, out any) (status int, raw []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	raw = rec.Body.Bytes()
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: invalid JSON response %q: %v", method, path, raw, err)
		}
	}
	return rec.Code, raw
}

func TestHealthz(t *testing.T) {
	s := testServer(t, Config{})
	var resp healthResponse
	status, _ := do(t, s, http.MethodGet, "/healthz", nil, &resp)
	if status != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("healthz: status %d, body %+v", status, resp)
	}
	// The shared fixture service may have accumulated models from other
	// tests (e.g. a train job registering "remote"); require membership,
	// not an exact list.
	found := false
	for _, m := range resp.Models {
		found = found || m == "default"
	}
	if !found {
		t.Fatalf("healthz models = %v, want to include default", resp.Models)
	}
}

func TestPredictByCellsMatchesRiskMap(t *testing.T) {
	s := testServer(t, Config{})
	var rm RiskMapResponse
	status, _ := do(t, s, http.MethodGet, "/v1/riskmap?model=default&effort=1.5", nil, &rm)
	if status != http.StatusOK {
		t.Fatalf("riskmap status %d", status)
	}
	if rm.Cells != fixtureN || len(rm.Risk) != fixtureN || len(rm.Uncertainty) != fixtureN {
		t.Fatalf("riskmap shape: cells=%d risk=%d unc=%d, want %d", rm.Cells, len(rm.Risk), len(rm.Uncertainty), fixtureN)
	}
	if rm.Width <= 0 || rm.Height <= 0 {
		t.Fatalf("riskmap geometry %dx%d", rm.Width, rm.Height)
	}
	var pr PredictResponse
	status, _ = do(t, s, http.MethodPost, "/v1/predict",
		PredictRequest{Model: "default", Effort: 1.5, Cells: []int{0, 5, 99}}, &pr)
	if status != http.StatusOK {
		t.Fatalf("predict status %d", status)
	}
	for i, c := range []int{0, 5, 99} {
		if pr.Probs[i] != rm.Risk[c] {
			t.Fatalf("cell %d: predict %v != riskmap %v", c, pr.Probs[i], rm.Risk[c])
		}
	}
}

// TestPredictParallelDeterministic floods /v1/predict with concurrent
// identical requests (run with -race in CI) and requires byte-identical
// response bodies — the serving determinism contract.
func TestPredictParallelDeterministic(t *testing.T) {
	s := testServer(t, Config{})
	cells := make([]int, 200)
	for i := range cells {
		cells[i] = (i * 7) % fixtureN
	}
	req := PredictRequest{Model: "default", Effort: 2, Cells: cells}
	_, want := do(t, s, http.MethodPost, "/v1/predict", req, nil)
	if !json.Valid(want) {
		t.Fatalf("baseline response is not valid JSON: %q", want)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := json.Marshal(req)
			if err != nil {
				errCh <- err
				return
			}
			r := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(b))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, r)
			if rec.Code != http.StatusOK {
				errCh <- fmt.Errorf("status %d: %s", rec.Code, rec.Body.Bytes())
				return
			}
			if !bytes.Equal(rec.Body.Bytes(), want) {
				errCh <- fmt.Errorf("concurrent response diverged from baseline")
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestPredictByFeaturesWithVariance(t *testing.T) {
	s := testServer(t, Config{})
	sm, _ := testService(t).Served("default")
	dim := sm.FeatureDim()
	X := [][]float64{make([]float64, dim), make([]float64, dim)}
	for j := 0; j < dim; j++ {
		X[0][j] = 0.1 * float64(j)
		X[1][j] = 0.5
	}
	var pr PredictResponse
	status, _ := do(t, s, http.MethodPost, "/v1/predict",
		PredictRequest{Model: "default", Effort: 1, Features: X, Variance: true}, &pr)
	if status != http.StatusOK {
		t.Fatalf("predict status %d", status)
	}
	if len(pr.Probs) != 2 || len(pr.Variances) != 2 {
		t.Fatalf("response shape: %d probs, %d variances", len(pr.Probs), len(pr.Variances))
	}
	for _, p := range pr.Probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of [0,1]", p)
		}
	}
}

func TestRiskMapCacheHit(t *testing.T) {
	s := testServer(t, Config{RiskMapCacheSize: 8})
	var first, second RiskMapResponse
	if status, _ := do(t, s, http.MethodPost, "/v1/riskmap", RiskMapRequest{Model: "default", Effort: 2.25}, &first); status != http.StatusOK {
		t.Fatalf("first riskmap status %d", status)
	}
	if first.Cached {
		t.Fatal("first response claims to be cached")
	}
	if status, _ := do(t, s, http.MethodPost, "/v1/riskmap", RiskMapRequest{Model: "default", Effort: 2.25}, &second); status != http.StatusOK {
		t.Fatalf("second riskmap status %d", status)
	}
	if !second.Cached {
		t.Fatal("second identical request was not served from the cache")
	}
	for i := range first.Risk {
		if first.Risk[i] != second.Risk[i] {
			t.Fatal("cached risk map diverged from computed one")
		}
	}
	if got := s.cache.len(); got != 1 {
		t.Fatalf("cache holds %d entries, want 1", got)
	}
}

// TestRequestDeadline checks an unmeetable per-request deadline surfaces as
// 504 — the ctx reached mid-sweep and aborted the work.
func TestRequestDeadline(t *testing.T) {
	s := testServer(t, Config{})
	// A park-wide GP sweep at a fresh effort cannot finish in 1ms.
	status, raw := do(t, s, http.MethodPost, "/v1/riskmap",
		RiskMapRequest{Model: "default", Effort: 97.25, TimeoutMS: 1}, nil)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("riskmap with 1ms budget: status %d, body %s", status, raw)
	}
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Error.Code != CodeDeadline || !strings.Contains(e.Error.Message, "deadline") {
		t.Fatalf("error body %q should carry the deadline code", raw)
	}
	// The server-wide timeout applies when the request sets none.
	s2 := testServer(t, Config{RequestTimeout: time.Millisecond})
	cells := make([]int, 0, 8*fixtureN)
	for r := 0; r < 8; r++ {
		for c := 0; c < fixtureN; c++ {
			cells = append(cells, c)
		}
	}
	status, raw = do(t, s2, http.MethodPost, "/v1/predict",
		PredictRequest{Model: "default", Effort: 98.5, Cells: cells}, nil)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("predict under 1ms server timeout: status %d, body %s", status, raw)
	}
}

func TestPlanEndpoint(t *testing.T) {
	s := testServer(t, Config{})
	var resp PlanResponse
	status, raw := do(t, s, http.MethodPost, "/v1/plan",
		PlanRequest{Model: "default", Post: 0, Beta: 0.9, Radius: 2, MaxCells: 12, T: 5, K: 2, Segments: 6}, &resp)
	if status != http.StatusOK {
		t.Fatalf("plan status %d, body %s", status, raw)
	}
	if len(resp.Cells) == 0 || len(resp.Effort) != len(resp.Cells) || len(resp.Routes) == 0 {
		t.Fatalf("plan shape: %d cells, %d efforts, %d routes", len(resp.Cells), len(resp.Effort), len(resp.Routes))
	}
	for _, r := range resp.Routes {
		if len(r) != 6 || r[0] != resp.Cells[0] || r[5] != resp.Cells[0] {
			t.Fatalf("malformed route %v", r)
		}
	}
}

// TestBadRequests is the table-driven contract of the structured error
// envelope: every failing request carries a machine-readable code that
// matches its transport status.
func TestBadRequests(t *testing.T) {
	s := testServer(t, Config{})
	for _, tc := range []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"invalid JSON", http.MethodPost, "/v1/predict", "{nope", http.StatusBadRequest, CodeBadRequest},
		{"unknown field", http.MethodPost, "/v1/predict", `{"mdoel":"default"}`, http.StatusBadRequest, CodeBadRequest},
		{"features and cells", http.MethodPost, "/v1/predict", `{"effort":1,"cells":[1],"features":[[1]]}`, http.StatusBadRequest, CodeBadRequest},
		{"neither features nor cells", http.MethodPost, "/v1/predict", `{"effort":1}`, http.StatusBadRequest, CodeBadRequest},
		{"negative effort", http.MethodPost, "/v1/predict", `{"effort":-1,"cells":[0]}`, http.StatusBadRequest, CodeBadRequest},
		{"unknown model", http.MethodPost, "/v1/predict", `{"model":"nope","effort":1,"cells":[0]}`, http.StatusNotFound, CodeUnknownModel},
		{"cell out of range", http.MethodPost, "/v1/predict", `{"effort":1,"cells":[999999]}`, http.StatusBadRequest, CodeBadRequest},
		{"variance for cells", http.MethodPost, "/v1/predict", `{"effort":1,"cells":[0],"variance":true}`, http.StatusBadRequest, CodeBadRequest},
		{"zero effort riskmap", http.MethodPost, "/v1/riskmap", `{"model":"default"}`, http.StatusBadRequest, CodeBadRequest},
		{"riskmap unknown model", http.MethodGet, "/v1/riskmap?model=nope&effort=1", "", http.StatusNotFound, CodeUnknownModel},
		{"plan bad beta", http.MethodPost, "/v1/plan", `{"model":"default","beta":7}`, http.StatusBadRequest, CodeBadRequest},
		{"plan bad post", http.MethodPost, "/v1/plan", `{"model":"default","post":-2,"beta":0.5}`, http.StatusBadRequest, CodeBadRequest},
		{"simulate over cap", http.MethodPost, "/v1/simulate", `{"park":"rand:16","seasons":999}`, http.StatusBadRequest, CodeBadRequest},
		{"simulate unknown park", http.MethodPost, "/v1/simulate", `{"park":"ATLANTIS","seasons":1}`, http.StatusBadRequest, CodeBadRequest},
		{"job unknown kind", http.MethodPost, "/v1/jobs", `{"kind":"mine-bitcoin"}`, http.StatusBadRequest, CodeBadRequest},
		{"job bad params", http.MethodPost, "/v1/jobs", `{"kind":"simulate","simulate":{"seasons":999}}`, http.StatusBadRequest, CodeBadRequest},
		{"job simulate unknown park", http.MethodPost, "/v1/jobs", `{"kind":"simulate","simulate":{"park":"ATLANTIS"}}`, http.StatusBadRequest, CodeBadRequest},
		{"job train without name", http.MethodPost, "/v1/jobs", `{"kind":"train"}`, http.StatusBadRequest, CodeBadRequest},
		{"job train unknown park", http.MethodPost, "/v1/jobs", `{"kind":"train","train":{"name":"x","park":"rand:zzz"}}`, http.StatusBadRequest, CodeBadRequest},
		{"job table2 unknown park", http.MethodPost, "/v1/jobs", `{"kind":"table2","table2":{"park":"ATLANTIS"}}`, http.StatusBadRequest, CodeBadRequest},
		{"job riskmap bad effort", http.MethodPost, "/v1/jobs", `{"kind":"riskmap","riskmap":{"model":"default","effort":0}}`, http.StatusBadRequest, CodeBadRequest},
		{"job riskmap unknown model rejected at submit", http.MethodPost, "/v1/jobs", `{"kind":"riskmap","riskmap":{"model":"nope","effort":1}}`, http.StatusNotFound, CodeUnknownModel},
		{"unknown job snapshot", http.MethodGet, "/v1/jobs/j-999999", "", http.StatusNotFound, CodeUnknownJob},
		{"unknown job result", http.MethodGet, "/v1/jobs/j-999999/result", "", http.StatusNotFound, CodeUnknownJob},
		{"unknown job events", http.MethodGet, "/v1/jobs/j-999999/events", "", http.StatusNotFound, CodeUnknownJob},
		{"unknown job cancel", http.MethodDelete, "/v1/jobs/j-999999", "", http.StatusNotFound, CodeUnknownJob},
		{"GET predict", http.MethodGet, "/v1/predict", "", http.StatusMethodNotAllowed, ""},
	} {
		req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, rec.Code, tc.wantStatus, rec.Body.Bytes())
			continue
		}
		if tc.wantCode == "" {
			continue // mux-level rejection, no JSON envelope
		}
		var e errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Errorf("%s: error body is not the envelope: %s", tc.name, rec.Body.Bytes())
			continue
		}
		if e.Error.Code != tc.wantCode || e.Error.Message == "" {
			t.Errorf("%s: code %q message %q, want code %q", tc.name, e.Error.Code, e.Error.Message, tc.wantCode)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.add("a", 1)
	c.add("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.add("c", 3) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a lost")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c lost")
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	// Disabled cache never stores.
	d := newLRU(0)
	d.add("x", 1)
	if _, ok := d.get("x"); ok {
		t.Fatal("disabled cache stored a value")
	}
}

// ------------------------------------------------------------ /v1/simulate

func TestSimulateEndpoint(t *testing.T) {
	s := testServer(t, Config{})
	var resp SimulateResponse
	status, raw := do(t, s, http.MethodPost, "/v1/simulate", SimulateRequest{
		Park:     "rand:16",
		Seasons:  1,
		Policies: []string{"uniform", "historical"},
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if resp.Park != "rand-16" || resp.Seasons != 1 || len(resp.Policies) != 2 {
		t.Fatalf("unexpected report: %s", raw)
	}
	if resp.Policies[0].Policy != "uniform" || len(resp.Policies[0].Seasons) != 1 {
		t.Fatalf("missing season log: %s", raw)
	}
	if !strings.Contains(resp.Text, "uniform") || !strings.Contains(resp.Text, "historical") {
		t.Fatalf("text rendering missing policies: %q", resp.Text)
	}
	if resp.Attacker != "adaptive" {
		t.Fatalf("default attacker %q, want adaptive", resp.Attacker)
	}
}

func TestSimulateEndpointValidation(t *testing.T) {
	s := testServer(t, Config{})
	cases := []SimulateRequest{
		{Park: "rand:16", Seasons: maxSimSeasons + 1},
		{Park: "rand:16", Seasons: 1, SeasonMonths: maxSimSeasonMonths + 1},
		{Park: "rand:16", Seasons: 1, Policies: make([]string, maxSimPolicies+1)},
		{Park: "rand:16", Seasons: 1, Beta: 1.5},
		{Park: "ATLANTIS", Seasons: 1},
		{Park: "rand:16", Seasons: 1, Policies: []string{"skynet"}},
		{Park: "rand:16", Seasons: 1, Attacker: "quantum"},
	}
	for i, req := range cases {
		if status, raw := do(t, s, http.MethodPost, "/v1/simulate", req, nil); status != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%s), want 400", i, status, raw)
		}
	}
}

func TestSimulateEndpointTimeout(t *testing.T) {
	s := testServer(t, Config{})
	status, raw := do(t, s, http.MethodPost, "/v1/simulate", SimulateRequest{
		Park:      "MFNP",
		Seasons:   6,
		Policies:  []string{"paws"},
		TimeoutMS: 1,
	}, nil)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", status, raw)
	}
}
