package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"paws"
	"paws/internal/env"
)

// envCreateBody is the short episode every env HTTP test uses.
func envCreateBody() env.CreateRequest {
	return env.CreateRequest{
		Park:            "MFNP",
		Seed:            7,
		Seasons:         2,
		SeasonMonths:    1,
		BootstrapMonths: 6,
	}
}

// createEnvSession creates a session and returns its ID and cell count.
// (The shared do helper only decodes 200 responses; create returns 201, so
// the body is decoded here.)
func createEnvSession(t *testing.T, s *Server) (id string, cells int) {
	t.Helper()
	var resp env.CreateResponse
	status, raw := do(t, s, http.MethodPost, "/v1/envs", envCreateBody(), nil)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d, body %s", status, raw)
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("create: invalid JSON %s: %v", raw, err)
	}
	if resp.Session.ID == "" || len(resp.Obs.Effort) == 0 {
		t.Fatalf("create response incomplete: %s", raw)
	}
	return resp.Session.ID, len(resp.Obs.Effort[0])
}

func uniformWire(cells int) env.StepRequest {
	eff := make([]float64, cells)
	for i := range eff {
		eff[i] = 1
	}
	return env.StepRequest{Effort: eff}
}

// TestEnvSessionLifecycle drives one episode over HTTP end to end: create
// (full bootstrap record), step to done (deltas only), conflict after
// done, delete, then unknown.
func TestEnvSessionLifecycle(t *testing.T) {
	s := testServer(t, Config{ReplicaID: "r1"})
	var created env.CreateResponse
	status, raw := do(t, s, http.MethodPost, "/v1/envs", envCreateBody(), nil)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d, body %s", status, raw)
	}
	if err := json.Unmarshal(raw, &created); err != nil {
		t.Fatalf("create: invalid JSON %s: %v", raw, err)
	}
	if created.Session.ID != "e-r1-000001" {
		t.Fatalf("session ID %q, want e-r1-000001", created.Session.ID)
	}
	if created.Obs.Months != 6 || len(created.Obs.Effort) != 6 {
		t.Fatalf("bootstrap record: months=%d effort rows=%d, want 6", created.Obs.Months, len(created.Obs.Effort))
	}
	id, cells := created.Session.ID, len(created.Obs.Effort[0])

	var step env.StepResponse
	status, raw = do(t, s, http.MethodPost, "/v1/envs/"+id+"/step", uniformWire(cells), &step)
	if status != http.StatusOK {
		t.Fatalf("step: status %d, body %s", status, raw)
	}
	if step.Done || step.Stats.Season != 0 || step.Stats.StartMonth != 6 {
		t.Fatalf("first step: %+v", step)
	}
	if len(step.Delta.Effort) != 1 || step.Delta.Months != 7 {
		t.Fatalf("step delta should carry exactly the appended month: %+v", step.Delta)
	}
	status, raw = do(t, s, http.MethodPost, "/v1/envs/"+id+"/step", uniformWire(cells), &step)
	if status != http.StatusOK || !step.Done {
		t.Fatalf("second step: status %d done=%v, body %s", status, step.Done, raw)
	}

	// Step after done: structured 409.
	status, raw = do(t, s, http.MethodPost, "/v1/envs/"+id+"/step", uniformWire(cells), nil)
	if envelope := decodeEnvelope(t, raw); status != http.StatusConflict || envelope.Error.Code != CodeConflict {
		t.Fatalf("step after done: status %d code %q, body %s", status, envelope.Error.Code, raw)
	}

	var snap env.Snapshot
	if status, raw = do(t, s, http.MethodGet, "/v1/envs/"+id, nil, &snap); status != http.StatusOK {
		t.Fatalf("get: status %d, body %s", status, raw)
	}
	if !snap.Done || snap.Season != 2 || snap.Months != 8 {
		t.Fatalf("finished snapshot: %+v", snap)
	}

	var del env.DeleteResponse
	if status, raw = do(t, s, http.MethodDelete, "/v1/envs/"+id, nil, &del); status != http.StatusOK {
		t.Fatalf("delete: status %d, body %s", status, raw)
	}
	status, raw = do(t, s, http.MethodGet, "/v1/envs/"+id, nil, nil)
	if envelope := decodeEnvelope(t, raw); status != http.StatusNotFound || envelope.Error.Code != CodeUnknownEnv {
		t.Fatalf("get after delete: status %d code %q, body %s", status, envelope.Error.Code, raw)
	}
}

// decodeEnvelope parses a structured error body (do only decodes 200s).
func decodeEnvelope(t *testing.T, raw []byte) errorResponse {
	t.Helper()
	var envelope errorResponse
	if err := json.Unmarshal(raw, &envelope); err != nil {
		t.Fatalf("invalid error envelope %s: %v", raw, err)
	}
	return envelope
}

// TestEnvCreateValidation: malformed specs and out-of-cap requests fail as
// structured 400s without building anything.
func TestEnvCreateValidation(t *testing.T) {
	s := testServer(t, Config{})
	cases := []env.CreateRequest{
		{Park: "atlantis"},
		{Seasons: maxSimSeasons + 1},
		{SeasonMonths: maxSimSeasonMonths + 1},
		{Seasons: -1},
		{BudgetKM: -3},
		{Attacker: "quantum"},
	}
	for _, req := range cases {
		var envelope errorResponse
		status, raw := do(t, s, http.MethodPost, "/v1/envs", req, &envelope)
		if status != http.StatusBadRequest {
			t.Errorf("create %+v: status %d, body %s", req, status, raw)
		}
	}
}

// TestEnvCapacitySheds: with a one-session bound and a live episode
// retained, the next create sheds with the structured 429 + Retry-After
// contract.
func TestEnvCapacitySheds(t *testing.T) {
	s := testServer(t, Config{EnvMaxSessions: 1})
	createEnvSession(t, s)
	status, raw, rec := doRec(t, s, http.MethodPost, "/v1/envs", envCreateBody())
	if status != http.StatusTooManyRequests {
		t.Fatalf("create over capacity: status %d, body %s", status, raw)
	}
	var envelope errorResponse
	if err := json.Unmarshal(raw, &envelope); err != nil {
		t.Fatalf("bad envelope %s: %v", raw, err)
	}
	if envelope.Error.Code != CodeOverloaded {
		t.Fatalf("code %q, want %q (body %s)", envelope.Error.Code, CodeOverloaded, raw)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want an integer ≥ 1", rec.Header().Get("Retry-After"))
	}
	if s.Statusz().Envs.Active != 1 {
		t.Fatalf("statusz envs: %+v, want 1 active", s.Statusz().Envs)
	}
}

// TestEnvDrainVsUnknown: after Close, env requests answer 503
// shutting_down — including for IDs that were just drained — never 404.
func TestEnvDrainVsUnknown(t *testing.T) {
	s := testServer(t, Config{})
	id, cells := createEnvSession(t, s)
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, req := range []struct {
		method, path string
		body         any
	}{
		{http.MethodPost, "/v1/envs", envCreateBody()},
		{http.MethodPost, "/v1/envs/" + id + "/step", uniformWire(cells)},
		{http.MethodGet, "/v1/envs/" + id, nil},
		{http.MethodDelete, "/v1/envs/" + id, nil},
	} {
		status, raw := do(t, s, req.method, req.path, req.body, nil)
		if envelope := decodeEnvelope(t, raw); status != http.StatusServiceUnavailable || envelope.Error.Code != CodeShuttingDown {
			t.Fatalf("%s %s after close: status %d code %q, body %s",
				req.method, req.path, status, envelope.Error.Code, raw)
		}
	}
}

// TestEnvStatuszAndMetrics: the session manager's load is visible on
// /statusz and the env instruments are registered on /metricsz.
func TestEnvStatuszAndMetrics(t *testing.T) {
	s := testServer(t, Config{})
	id, cells := createEnvSession(t, s)
	if st := s.Statusz().Envs; st.Active != 1 || st.Sessions != 1 || st.Created != 1 {
		t.Fatalf("statusz envs after create: %+v", st)
	}
	var step env.StepResponse
	if status, raw := do(t, s, http.MethodPost, "/v1/envs/"+id+"/step", uniformWire(cells), &step); status != http.StatusOK {
		t.Fatalf("step: status %d, body %s", status, raw)
	}
	rec := doRaw(t, s.MetricsHandler(), http.MethodGet, "/metricsz")
	if rec.Code != http.StatusOK {
		t.Fatalf("metricsz: status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, metric := range []string{
		"paws_env_sessions_active 1",
		"paws_env_sessions 1",
		"paws_env_sessions_created_total 1",
		"paws_env_steps_total 1",
		"paws_env_step_seconds",
		"paws_env_sessions_shed_total",
	} {
		if !contains(body, metric) {
			t.Errorf("metricsz missing %q", metric)
		}
	}
}

func contains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestSimulateRemoteMatchesLocal is the end-to-end identity acceptance of
// the remote environment surface: the same comparison run through HTTP
// /v1/envs sessions renders a byte-identical report to the in-process one,
// learned policies included.
func TestSimulateRemoteMatchesLocal(t *testing.T) {
	svc := testService(t)
	cfg := paws.SimConfig{
		Park:            "MFNP",
		Seasons:         2,
		SeasonMonths:    1,
		BootstrapMonths: 6,
		Policies:        []string{"uniform", "thompson", "softmax"},
	}
	local, err := svc.Simulate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(svc, Config{ReplicaID: "r1"}))
	defer srv.Close()
	for _, workers := range []int{1, 3} {
		remote, err := svc.SimulateRemote(context.Background(), srv.URL, srv.Client(), cfg, paws.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if remote.Format() != local.Format() {
			t.Fatalf("remote report (workers=%d) differs from local:\n%s\n--- local ---\n%s",
				workers, remote.Format(), local.Format())
		}
	}
}
