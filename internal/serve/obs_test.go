package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"paws/internal/job"
	"paws/internal/obs"
)

// TestErrorEnvelopeCarriesTraceID drives every interesting error path
// and checks the correlation contract: the response carries an
// X-Paws-Trace header, and the structured envelope's trace_id equals it.
func TestErrorEnvelopeCarriesTraceID(t *testing.T) {
	s := testServer(t, Config{JobWorkers: 1, AdmissionMaxQueue: 1})

	// Fill the queue (one running + one queued) so submissions shed.
	release := make(chan struct{})
	blocker := func(ctx context.Context, publish func(job.Event)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	var ids []string
	for i := 0; i < 2; i++ {
		id, err := s.jobs.Submit("block", blocker)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	t.Cleanup(func() {
		close(release)
		for _, id := range ids {
			s.jobs.Wait(context.Background(), id)
		}
	})

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad json", http.MethodPost, "/v1/predict", `{not json`, http.StatusBadRequest, CodeBadRequest},
		{"unknown model", http.MethodGet, "/v1/riskmap?model=nope&effort=1", "", http.StatusNotFound, CodeUnknownModel},
		{"unknown job", http.MethodGet, "/v1/jobs/j-999999", "", http.StatusNotFound, CodeUnknownJob},
		{"invalid effort", http.MethodGet, "/v1/riskmap?model=default&effort=zero", "", http.StatusBadRequest, CodeBadRequest},
		{"shed submission", http.MethodPost, "/v1/jobs", `{"kind":"riskmap","riskmap":{"effort":1}}`, http.StatusTooManyRequests, CodeOverloaded},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			status, raw := rec.Code, rec.Body.Bytes()
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", status, tc.wantStatus, raw)
			}
			header := rec.Header().Get(obs.TraceHeader)
			if header == "" {
				t.Fatal("response is missing the X-Paws-Trace header")
			}
			var envelope errorResponse
			if err := json.Unmarshal(raw, &envelope); err != nil {
				t.Fatalf("bad envelope %s: %v", raw, err)
			}
			if envelope.Error.Code != tc.wantCode {
				t.Fatalf("code %q, want %q", envelope.Error.Code, tc.wantCode)
			}
			if envelope.Error.TraceID != header {
				t.Fatalf("envelope trace_id %q != header %q", envelope.Error.TraceID, header)
			}
		})
	}
}

// TestTraceHeaderAdopted pins the propagation contract: an inbound
// X-Paws-Trace (as minted by pawsgate) is echoed on the response and
// names the recorded trace, so one ID follows the request end to end.
func TestTraceHeaderAdopted(t *testing.T) {
	s := testServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/riskmap?model=default&effort=1.75", nil)
	req.Header.Set(obs.TraceHeader, "feedcafe00000001")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("riskmap: status %d, body %s", rec.Code, rec.Body.Bytes())
	}
	if got := rec.Header().Get(obs.TraceHeader); got != "feedcafe00000001" {
		t.Fatalf("response header %q, want the inbound trace ID", got)
	}
	for _, tr := range s.tracer.Recent() {
		if tr.TraceID == "feedcafe00000001" && tr.Op == "GET /v1/riskmap" {
			return
		}
	}
	t.Fatalf("inbound trace ID not in the flight recorder: %+v", s.tracer.Recent())
}

// TestMetricszExposure drives a handful of requests and checks the
// Prometheus exposition covers the acceptance set: per-endpoint request
// counters and latency histograms, server-side riskmap hit/miss, and
// the job queue family.
func TestMetricszExposure(t *testing.T) {
	s := testServer(t, Config{})
	// Two identical riskmaps: one miss (compute) + one hit.
	for i := 0; i < 2; i++ {
		if status, raw := do(t, s, http.MethodGet, "/v1/riskmap?model=default&effort=1.875", nil, nil); status != http.StatusOK {
			t.Fatalf("riskmap: status %d, body %s", status, raw)
		}
	}
	do(t, s, http.MethodGet, "/v1/models", nil, nil)

	status, raw, rec := doRec(t, s, http.MethodGet, "/metricsz", nil)
	if status != http.StatusOK {
		t.Fatalf("metricsz: status %d", status)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metricsz content type %q", ct)
	}
	text := string(raw)
	for _, want := range []string{
		`paws_http_requests_total{endpoint="/v1/riskmap",method="GET",code="200"} 2`,
		`paws_http_requests_total{endpoint="/v1/models",method="GET",code="200"} 1`,
		`paws_http_request_seconds_count{endpoint="/v1/riskmap"} 2`,
		`paws_http_request_seconds_bucket{endpoint="/v1/riskmap",le="+Inf"} 2`,
		"# TYPE paws_http_request_seconds histogram",
		"# TYPE paws_riskmap_cache_hits_total counter",
		"paws_jobs_queued 0",
		"paws_jobs_running 0",
		"paws_jobs_shed_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metricsz missing %q:\n%s", want, text)
		}
	}
	// Server-side cache counters move with the workload: at least the one
	// hit and one miss this test generated (the shared fixture may have
	// seen more from other tests).
	st := s.cache.stats()
	if st.Hits < 1 || st.Misses < 1 {
		t.Fatalf("cache stats %+v, want >=1 hit and >=1 miss", st)
	}
}

// TestJobTraceRecordsComputeSpans submits a riskmap job with a
// gate-style inbound trace ID and checks /tracez holds both the submit
// trace and the job trace under the same ID, the latter with a compute
// span.
func TestJobTraceRecordsComputeSpans(t *testing.T) {
	s := testServer(t, Config{})
	body, _ := json.Marshal(JobSubmitRequest{Kind: "riskmap", RiskMap: &RiskMapRequest{Effort: 1.625}})
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	req.Header.Set(obs.TraceHeader, "beefbeef00000002")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", rec.Code, rec.Body.Bytes())
	}
	var snap job.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	pollJob(t, s, snap.ID)

	var gotSubmit, gotJob bool
	for _, tr := range s.tracer.Recent() {
		if tr.TraceID != "beefbeef00000002" {
			continue
		}
		switch tr.Op {
		case "POST /v1/jobs":
			gotSubmit = true
		case "job:riskmap":
			gotJob = true
			if tr.Status != "ok" {
				t.Fatalf("job trace status %q, want ok", tr.Status)
			}
			var hasSpan bool
			for _, sp := range tr.Spans {
				hasSpan = hasSpan || sp.Name == "riskmap"
			}
			if !hasSpan {
				t.Fatalf("job trace has no riskmap compute span: %+v", tr.Spans)
			}
		}
	}
	if !gotSubmit || !gotJob {
		t.Fatalf("tracez missing submit (%v) or job (%v) record for the propagated ID", gotSubmit, gotJob)
	}
}
