package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"paws"
	"paws/internal/job"
	"paws/internal/store"
)

// doRec is do plus the recorder, for tests that assert on headers.
func doRec(t *testing.T, s *Server, method, path string, body any) (status int, raw []byte, rec *httptest.ResponseRecorder) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(b))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes(), rec
}

// doRaw drives a bare http.Handler (e.g. the standalone statusz handler).
func doRaw(t *testing.T, h http.Handler, method, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	return rec
}

func TestStatuszReportsReplicaAndLoad(t *testing.T) {
	s := testServer(t, Config{ReplicaID: "r1", AdmissionBudget: 30 * time.Second, AdmissionMaxQueue: 8})
	var resp StatuszResponse
	status, raw := do(t, s, http.MethodGet, "/statusz", nil, &resp)
	if status != http.StatusOK {
		t.Fatalf("statusz: status %d, body %s", status, raw)
	}
	if resp.Replica != "r1" {
		t.Fatalf("replica %q, want r1", resp.Replica)
	}
	if resp.Models < 1 {
		t.Fatalf("models %d, want >= 1", resp.Models)
	}
	if resp.Admission.BudgetSeconds != 30 || resp.Admission.MaxQueue != 8 {
		t.Fatalf("admission config %+v not reported", resp.Admission)
	}
	if resp.Admission.Overloaded {
		t.Fatalf("idle replica reports overloaded: %+v", resp.Admission)
	}
	if resp.RiskMapCache.Max != 64 {
		t.Fatalf("cache max %d, want default 64", resp.RiskMapCache.Max)
	}
	// The standalone handler (pawsd mounts it on the debug listener) serves
	// the same payload.
	rec := doRaw(t, s.StatuszHandler(), http.MethodGet, "/statusz")
	if rec.Code != http.StatusOK {
		t.Fatalf("standalone statusz handler: status %d", rec.Code)
	}
}

// TestStatuszCountsCacheHits drives the same riskmap query twice and
// checks the hit/miss counters move — the measurement pawsload's
// affinity-vs-round-robin comparison is built on.
func TestStatuszCountsCacheHits(t *testing.T) {
	s := testServer(t, Config{})
	before := s.Statusz().RiskMapCache
	for i := 0; i < 2; i++ {
		var rm RiskMapResponse
		if status, raw := do(t, s, http.MethodGet, "/v1/riskmap?effort=1.25", nil, &rm); status != http.StatusOK {
			t.Fatalf("riskmap: status %d, body %s", status, raw)
		}
	}
	after := s.Statusz().RiskMapCache
	if after.Misses != before.Misses+1 {
		t.Fatalf("misses %d -> %d, want exactly one new miss", before.Misses, after.Misses)
	}
	if after.Hits != before.Hits+1 {
		t.Fatalf("hits %d -> %d, want exactly one new hit", before.Hits, after.Hits)
	}
}

// TestAdmissionControlShedsJobs fills the queue past AdmissionMaxQueue and
// checks a submission is rejected with the structured 429 + Retry-After
// contract (and that the gate reopens once the queue drains).
func TestAdmissionControlShedsJobs(t *testing.T) {
	s := testServer(t, Config{JobWorkers: 1, AdmissionMaxQueue: 1})
	release := make(chan struct{})
	blocker := func(ctx context.Context, publish func(job.Event)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	// One running + one queued fills the queue to the bound.
	var ids []string
	for i := 0; i < 2; i++ {
		id, err := s.jobs.Submit("block", blocker)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	status, raw, rec := doRec(t, s, http.MethodPost, "/v1/jobs", JobSubmitRequest{Kind: "riskmap", RiskMap: &RiskMapRequest{Effort: 1}})
	if status != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit: status %d, body %s", status, raw)
	}
	var envelope errorResponse
	if err := json.Unmarshal(raw, &envelope); err != nil {
		t.Fatalf("overloaded submit: bad envelope %s: %v", raw, err)
	}
	if envelope.Error.Code != CodeOverloaded {
		t.Fatalf("error code %q, want %q (body %s)", envelope.Error.Code, CodeOverloaded, raw)
	}
	ra := rec.Header().Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", ra)
	}
	// Synchronous simulate shares the same worker pool and the same gate.
	if status, raw, _ := doRec(t, s, http.MethodPost, "/v1/simulate", fastSim(1)); status != http.StatusTooManyRequests {
		t.Fatalf("overloaded simulate: status %d, body %s", status, raw)
	}
	if !s.Statusz().Admission.Overloaded {
		t.Fatal("statusz does not report the overload")
	}
	close(release)
	for _, id := range ids {
		if _, err := s.jobs.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	snap := submitJob(t, s, JobSubmitRequest{Kind: "riskmap", RiskMap: &RiskMapRequest{Effort: 1}})
	pollJob(t, s, snap.ID)
}

// TestAdmissionBudgetBacklog exercises the backlog-estimate path of the
// admission gate directly with synthetic load stats.
func TestAdmissionBudgetBacklog(t *testing.T) {
	s := testServer(t, Config{AdmissionBudget: 10 * time.Second})
	// 3 committed jobs × 2s mean = 6s backlog: under the 10s budget.
	if err := s.admissionCheck(job.Stats{Queued: 2, Running: 1, MeanJobSeconds: 2}); err != nil {
		t.Fatalf("6s backlog under 10s budget rejected: %v", err)
	}
	// 8 committed jobs × 2s mean = 16s backlog: over budget, and the retry
	// hint covers the 6s excess.
	err := s.admissionCheck(job.Stats{Queued: 7, Running: 1, MeanJobSeconds: 2})
	if err == nil {
		t.Fatal("16s backlog over 10s budget admitted")
	}
	ov, ok := err.(*overloadedError)
	if !ok {
		t.Fatalf("admission rejection is %T, want *overloadedError", err)
	}
	if got := ov.RetryAfterSeconds(); got != 6 {
		t.Fatalf("retry-after %ds, want 6", got)
	}
	// A replica that has not completed a job yet has MeanJobSeconds 0 and a
	// zero backlog: the budget alone never rejects (the queue bound covers
	// cold starts).
	if err := s.admissionCheck(job.Stats{Queued: 100, MeanJobSeconds: 0}); err != nil {
		t.Fatalf("zero-mean backlog rejected: %v", err)
	}
}

func TestModelsReportProvenanceAndPosts(t *testing.T) {
	s := testServer(t, Config{})
	var resp modelsResponse
	if status, raw := do(t, s, http.MethodGet, "/v1/models", nil, &resp); status != http.StatusOK {
		t.Fatalf("models: status %d, body %s", status, raw)
	}
	var def *ModelInfo
	for i := range resp.Models {
		if resp.Models[i].Name == "default" {
			def = &resp.Models[i]
		}
	}
	if def == nil {
		t.Fatal("fixture model missing from /v1/models")
	}
	if def.Source != paws.SourceMemory {
		t.Fatalf("source %q, want %q", def.Source, paws.SourceMemory)
	}
	if def.Posts < 1 {
		t.Fatalf("posts %d, want >= 1", def.Posts)
	}
}

// TestTrainJobPublishesToStore is the fleet train contract at the HTTP
// layer: with a store attached, a completed train job has published its
// artifact (hash in the job result, entry in the index) so peer replicas
// can pick it up.
func TestTrainJobPublishesToStore(t *testing.T) {
	svc := paws.NewService(paws.WithWorkers(2), paws.WithSeed(7))
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc.AttachStore(st)
	s := New(svc, Config{})
	snap := submitJob(t, s, JobSubmitRequest{Kind: "train", Train: &TrainJobRequest{
		Name: "pub", Park: "rand:16", Thresholds: 4, Members: 4,
	}})
	if final := pollJob(t, s, snap.ID); final.State != job.StateDone {
		t.Fatalf("train job ended %s: %s", final.State, final.Error)
	}
	var result TrainJobResponse
	if status, raw := do(t, s, http.MethodGet, "/v1/jobs/"+snap.ID+"/result", nil, &result); status != http.StatusOK {
		t.Fatalf("result: status %d, body %s", status, raw)
	}
	if result.Hash == "" || result.StoreGeneration != 1 {
		t.Fatalf("train result not published: hash %q, store generation %d", result.Hash, result.StoreGeneration)
	}
	entry, err := st.Lookup("pub")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Hash != result.Hash || entry.Park != "rand:16" || entry.Seed != 7 {
		t.Fatalf("store entry %+v does not match the train result (hash %s)", entry, result.Hash)
	}
	// /v1/models reports the published hash; the trainer's own copy stays
	// source "memory".
	var models modelsResponse
	do(t, s, http.MethodGet, "/v1/models", nil, &models)
	if len(models.Models) != 1 || models.Models[0].Hash != entry.Hash || models.Models[0].Source != paws.SourceMemory {
		t.Fatalf("models after publish: %+v", models.Models)
	}
}

// TestDrainReturnsShuttingDownNotUnknownJob is the satellite regression
// test at the HTTP layer: during a graceful drain, a client reconnecting
// to its NDJSON event stream (or any job endpoint) with a valid-but-
// drained job ID must get 503 shutting_down, not 404 unknown_job — a 404
// would tell a client holding a real ID that its job never existed.
func TestDrainReturnsShuttingDownNotUnknownJob(t *testing.T) {
	s := testServer(t, Config{})
	snap := submitJob(t, s, JobSubmitRequest{Kind: "riskmap", RiskMap: &RiskMapRequest{Effort: 1}})
	pollJob(t, s, snap.ID)
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The finished job is still retained: its endpoints keep working during
	// the drain window.
	if status, raw := do(t, s, http.MethodGet, "/v1/jobs/"+snap.ID, nil, nil); status != http.StatusOK {
		t.Fatalf("retained job during drain: status %d, body %s", status, raw)
	}
	// A drained/unknown ID reports the shutdown, on the snapshot endpoint
	// and on an event-stream reconnect.
	for _, path := range []string{"/v1/jobs/j-999999", "/v1/jobs/j-999999/events?from=3"} {
		status, raw := do(t, s, http.MethodGet, path, nil, nil)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("GET %s during drain: status %d, body %s", path, status, raw)
		}
		var envelope errorResponse
		if err := json.Unmarshal(raw, &envelope); err != nil {
			t.Fatalf("GET %s during drain: bad envelope %s: %v", path, raw, err)
		}
		if envelope.Error.Code != CodeShuttingDown {
			t.Fatalf("GET %s during drain: code %q, want %q", path, envelope.Error.Code, CodeShuttingDown)
		}
	}
}
