package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"paws/internal/job"
)

// fastCampaign is a cheap deterministic campaign grid: one small procedural
// park, two non-training policies, 2 seeds — finishes in well under a
// second.
func fastCampaign() *CampaignJobRequest {
	return &CampaignJobRequest{
		Parks:        []string{"rand:16"},
		Policies:     []string{"uniform", "historical"},
		Seeds:        []int64{1, 2},
		SeasonCounts: []int{1},
	}
}

// TestCampaignJobRunsAndStreams: the campaign kind runs to completion, its
// NDJSON stream carries one "cell" event per grid cell, and the retained
// result decodes into the paired report with its text rendering.
func TestCampaignJobRunsAndStreams(t *testing.T) {
	s := testServer(t, Config{})
	snap := submitJob(t, s, JobSubmitRequest{Kind: "campaign", Campaign: fastCampaign()})
	if final := pollJob(t, s, snap.ID); final.State != job.StateDone {
		t.Fatalf("campaign job ended %s: %+v", final.State, final)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+snap.ID+"/events", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("events: status %d", rec.Code)
	}
	cellEvents := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	for sc.Scan() {
		var e job.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch e.Stage {
		case "cell":
			if e.Total != 2 {
				t.Fatalf("cell event with total %d, want 2: %+v", e.Total, e)
			}
			cellEvents[e.Item] = true
		case "state":
		default:
			t.Fatalf("unexpected stage %q (inner simulation events must be suppressed): %+v", e.Stage, e)
		}
	}
	if len(cellEvents) != 2 {
		t.Fatalf("cell events %v, want one per grid cell", cellEvents)
	}
	var res CampaignResponse
	status, raw := do(t, s, http.MethodGet, "/v1/jobs/"+snap.ID+"/result", nil, &res)
	if status != http.StatusOK {
		t.Fatalf("result: status %d, body %s", status, raw)
	}
	if res.Report == nil || len(res.Cells) != 2 || len(res.Summaries) != 1 || res.Text == "" {
		t.Fatalf("campaign result shape: %+v", res)
	}
	sum := res.Summaries[0]
	if sum.Park != "rand:16" || len(sum.Policies) != 2 || len(sum.Deltas) != 1 {
		t.Fatalf("summary %+v", sum)
	}
	if d := sum.Deltas[0]; d.Policy != "historical" || d.Baseline != "uniform" || len(d.PerCell) != 2 {
		t.Fatalf("delta %+v", sum.Deltas[0])
	}
}

// TestCampaignJobDeterministicResult: two identical submissions retain
// byte-identical results — the job layer adds no nondeterminism to the
// campaign's worker-count-independent report.
func TestCampaignJobDeterministicResult(t *testing.T) {
	s := testServer(t, Config{JobWorkers: 4})
	var raws [2][]byte
	for i := range raws {
		snap := submitJob(t, s, JobSubmitRequest{Kind: "campaign", Campaign: fastCampaign()})
		if final := pollJob(t, s, snap.ID); final.State != job.StateDone {
			t.Fatalf("run %d ended %s", i, final.State)
		}
		status, raw := do(t, s, http.MethodGet, "/v1/jobs/"+snap.ID+"/result", nil, nil)
		if status != http.StatusOK {
			t.Fatalf("run %d: status %d", i, status)
		}
		raws[i] = raw
	}
	if !bytes.Equal(raws[0], raws[1]) {
		t.Fatal("identical campaign submissions returned different results")
	}
}

// TestCampaignJobValidation: malformed grids are rejected at submit time
// with the structured bad_request envelope — no doomed job is created.
func TestCampaignJobValidation(t *testing.T) {
	s := testServer(t, Config{})
	cases := []struct {
		name string
		req  CampaignJobRequest
	}{
		{"unknown park", CampaignJobRequest{Parks: []string{"ATLANTIS"}}},
		{"malformed range", CampaignJobRequest{Parks: []string{"rand:9-2"}}},
		{"overflowing range", CampaignJobRequest{Parks: []string{"rand:0-9223372036854775807"}}},
		{"too many parks", CampaignJobRequest{Parks: []string{"rand:1-200"}}},
		{"grid too large", CampaignJobRequest{Parks: []string{"rand:1-8"}, Seeds: []int64{1, 2, 3, 4, 5, 6, 7, 8, 9}}},
		{"too many seeds", CampaignJobRequest{Seeds: []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}}},
		{"duplicate seeds", CampaignJobRequest{Seeds: []int64{1, 1}}},
		{"duplicate policies", CampaignJobRequest{Policies: []string{"uniform", "uniform"}}},
		{"unknown policy", CampaignJobRequest{Policies: []string{"uniform", "skynet"}}},
		{"empty policy name", CampaignJobRequest{Policies: []string{"uniform", ""}}},
		{"zero season count", CampaignJobRequest{SeasonCounts: []int{0}}},
		{"season count over cap", CampaignJobRequest{SeasonCounts: []int{99}}},
		{"season months over cap", CampaignJobRequest{SeasonMonths: 99}},
		{"negative season months", CampaignJobRequest{SeasonMonths: -1}},
		{"unknown attacker", CampaignJobRequest{Attacker: "quantum"}},
		{"unknown baseline", CampaignJobRequest{Baseline: "skynet"}},
		{"beta out of range", CampaignJobRequest{Beta: 1.5}},
		{"negative resamples", CampaignJobRequest{Resamples: -1}},
		{"resamples over cap", CampaignJobRequest{Resamples: 1_000_000}},
	}
	for _, tc := range cases {
		req := tc.req
		status, raw := do(t, s, http.MethodPost, "/v1/jobs", JobSubmitRequest{Kind: "campaign", Campaign: &req}, nil)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", tc.name, status, raw)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Error.Code != CodeBadRequest {
			t.Errorf("%s: envelope %s", tc.name, raw)
		}
	}
	// Nothing above should have left a job behind.
	var list jobListResponse
	if status, _ := do(t, s, http.MethodGet, "/v1/jobs", nil, &list); status != http.StatusOK || len(list.Jobs) != 0 {
		t.Fatalf("rejected submissions left jobs: %+v", list.Jobs)
	}
}
