package serve

import (
	"context"
	"net/http/httptest"
	"testing"

	"paws"
)

// BenchmarkEnvStep prices the environment subsystem against the direct
// closed-loop simulation it was carved out of (BENCH_env.json). All three
// sub-benchmarks execute the same episode — MFNP, one uniform policy,
// 4 seasons of 1 month over a 6-month bootstrap — so their ns/op are
// directly comparable:
//
//	direct-sim — Service.Simulate, the pre-subsystem code path (sim.Run
//	             driving an internal Env end to end in process);
//	env-local  — Service.NewEnv plus an explicit Reset/Step loop, what a
//	             Go learner pays to hold the loop open between decisions;
//	env-remote — Service.SimulateRemote against a live pawsd replica, the
//	             same steps as HTTP /v1/envs session round trips.
//
// env-local minus direct-sim is the carve-out's overhead (report assembly
// aside, they run identical month kernels); env-remote minus direct-sim is
// the wire cost of remoting every step. Detections are reported as a metric
// because all three must agree — the subsystem is only a seam, never a
// different simulation.
func BenchmarkEnvStep(b *testing.B) {
	simCfg := paws.SimConfig{
		Park:            "MFNP",
		Seasons:         4,
		SeasonMonths:    1,
		BootstrapMonths: 6,
		Policies:        []string{"uniform"},
	}
	envCfg := paws.EnvConfig{
		Park:            simCfg.Park,
		Seasons:         simCfg.Seasons,
		SeasonMonths:    simCfg.SeasonMonths,
		BootstrapMonths: simCfg.BootstrapMonths,
	}
	ctx := context.Background()

	b.Run("direct-sim", func(b *testing.B) {
		svc := paws.NewService(paws.WithSeed(7), paws.WithWorkers(1))
		var detections int
		for i := 0; i < b.N; i++ {
			rep, err := svc.Simulate(ctx, simCfg)
			if err != nil {
				b.Fatal(err)
			}
			detections = rep.Policies[0].Detections
		}
		b.ReportMetric(float64(detections), "detections")
	})

	b.Run("env-local", func(b *testing.B) {
		svc := paws.NewService(paws.WithSeed(7), paws.WithWorkers(1))
		var detections int
		for i := 0; i < b.N; i++ {
			e, err := svc.NewEnv(envCfg)
			if err != nil {
				b.Fatal(err)
			}
			cells := e.Config().Park.Grid.NumCells()
			effort := make([]float64, cells)
			for j := range effort {
				effort[j] = 1
			}
			detections = 0
			for !e.Done() {
				_, st, _, err := e.Step(ctx, effort)
				if err != nil {
					b.Fatal(err)
				}
				detections += st.Detections
			}
		}
		b.ReportMetric(float64(detections), "detections")
	})

	b.Run("env-remote", func(b *testing.B) {
		svc := paws.NewService(paws.WithSeed(7), paws.WithWorkers(1))
		srv := httptest.NewServer(New(svc, Config{ReplicaID: "bench"}))
		defer srv.Close()
		var detections int
		for i := 0; i < b.N; i++ {
			rep, err := svc.SimulateRemote(ctx, srv.URL, srv.Client(), simCfg)
			if err != nil {
				b.Fatal(err)
			}
			detections = rep.Policies[0].Detections
		}
		b.ReportMetric(float64(detections), "detections")
	})
}
