package serve

import (
	"container/list"
	"sync"
)

// lruCache is a small, mutex-guarded, bounded LRU — the risk-map response
// cache. Park-wide map generation costs seconds of model evaluation while a
// cached response costs a map lookup, and rangers query the same handful of
// nominal efforts, so a tiny cache absorbs almost all riskmap traffic.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
	// hits / misses count get outcomes over the cache's lifetime — the
	// observable signal behind /statusz cache stats, which is how the fleet
	// load harness measures whether pawsgate's affinity routing actually
	// concentrates repeat riskmap keys on the same replica. evictions
	// counts entries displaced by the size bound: a high rate relative to
	// misses means the working set of (model, effort) keys outgrows the
	// configured cache.
	hits, misses, evictions int64
}

// cacheStats is a point-in-time summary of the LRU, served by /statusz.
type cacheStats struct {
	Size      int   `json:"size"`
	Max       int   `json:"max"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

type lruEntry struct {
	key string
	val any
}

// newLRU builds a cache bounded to max entries (max ≤ 0 disables caching).
func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts or refreshes a value, evicting the least recently used entry
// when the bound is exceeded.
func (c *lruCache) add(key string, val any) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*lruEntry).key)
		c.evictions++
	}
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// stats reports the cache's current size and lifetime hit/miss counts.
func (c *lruCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{Size: c.ll.Len(), Max: c.max, Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
