package lp

import (
	"math"
	"testing"
	"testing/quick"

	"paws/internal/rng"
)

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	return sol
}

func TestSimpleLP(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0 → x=4, y=0, obj 12.
	p := NewProblem()
	x := p.AddVariable(3, 0, math.Inf(1))
	y := p.AddVariable(2, 0, math.Inf(1))
	if err := p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]int{x, y}, []float64{1, 3}, LE, 6); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-12) > 1e-6 {
		t.Fatalf("obj = %v want 12", sol.Obj)
	}
	if math.Abs(sol.X[x]-4) > 1e-6 || math.Abs(sol.X[y]) > 1e-6 {
		t.Fatalf("X = %v", sol.X)
	}
}

func TestInteriorOptimum(t *testing.T) {
	// max x + y s.t. 2x + y ≤ 4, x + 2y ≤ 4 → x=y=4/3, obj 8/3.
	p := NewProblem()
	x := p.AddVariable(1, 0, math.Inf(1))
	y := p.AddVariable(1, 0, math.Inf(1))
	p.AddConstraint([]int{x, y}, []float64{2, 1}, LE, 4)
	p.AddConstraint([]int{x, y}, []float64{1, 2}, LE, 4)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-8.0/3) > 1e-6 {
		t.Fatalf("obj = %v want %v", sol.Obj, 8.0/3)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// max x + 2y s.t. x + y = 3, y ≥ 1, x ≥ 0, y ≤ 2 → y=2, x=1, obj 5.
	p := NewProblem()
	x := p.AddVariable(1, 0, math.Inf(1))
	y := p.AddVariable(2, 0, 2)
	p.AddConstraint([]int{x, y}, []float64{1, 1}, EQ, 3)
	p.AddConstraint([]int{y}, []float64{1}, GE, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-5) > 1e-6 {
		t.Fatalf("obj = %v want 5", sol.Obj)
	}
}

func TestUpperBoundsRespected(t *testing.T) {
	// max x s.t. x ≤ 10 via variable bound only.
	p := NewProblem()
	x := p.AddVariable(1, 0, 7.5)
	_ = x
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-7.5) > 1e-9 {
		t.Fatalf("obj = %v want 7.5", sol.Obj)
	}
}

func TestNonzeroLowerBounds(t *testing.T) {
	// min x + y (max −x−y) with x ≥ 2, y ≥ 3, x+y ≥ 6 → obj −6 at (3,3) or (2,4)…
	p := NewProblem()
	x := p.AddVariable(-1, 2, math.Inf(1))
	y := p.AddVariable(-1, 3, math.Inf(1))
	p.AddConstraint([]int{x, y}, []float64{1, 1}, GE, 6)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj+6) > 1e-6 {
		t.Fatalf("obj = %v want -6", sol.Obj)
	}
	if sol.X[x] < 2-1e-9 || sol.X[y] < 3-1e-9 {
		t.Fatalf("bounds violated: %v", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(1, 0, math.Inf(1))
	p.AddConstraint([]int{x}, []float64{1}, LE, 1)
	p.AddConstraint([]int{x}, []float64{1}, GE, 2)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v want infeasible", sol.Status)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	p := NewProblem()
	p.AddVariable(1, 5, 2) // lo > hi
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(1, 0, math.Inf(1))
	y := p.AddVariable(0, 0, math.Inf(1))
	p.AddConstraint([]int{x, y}, []float64{1, -1}, LE, 1)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v want unbounded", sol.Status)
	}
}

func TestEmptyProblem(t *testing.T) {
	sol, err := Solve(NewProblem(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Obj != 0 {
		t.Fatalf("empty problem: %+v", sol)
	}
}

func TestRejectsInfiniteLowerBound(t *testing.T) {
	p := NewProblem()
	p.AddVariable(1, math.Inf(-1), 0)
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("expected error for -inf lower bound")
	}
}

func TestAddConstraintValidation(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(1, 0, 1)
	if err := p.AddConstraint([]int{x}, []float64{1, 2}, LE, 1); err == nil {
		t.Fatal("expected mismatch error")
	}
	if err := p.AddConstraint([]int{99}, []float64{1}, LE, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	// Duplicate indices accumulate.
	if err := p.AddConstraint([]int{x, x}, []float64{1, 1}, LE, 4); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	// 2x ≤ 4 with x ≤ 1 bound → x = 1.
	if math.Abs(sol.X[x]-1) > 1e-9 {
		t.Fatalf("X = %v", sol.X)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(1, 0, 10)
	p.AddConstraint([]int{x}, []float64{1}, LE, 5)
	q := p.Clone()
	q.SetBounds(x, 0, 1)
	solP := solveOK(t, p)
	solQ := solveOK(t, q)
	if math.Abs(solP.Obj-5) > 1e-6 || math.Abs(solQ.Obj-1) > 1e-6 {
		t.Fatalf("clone not independent: %v, %v", solP.Obj, solQ.Obj)
	}
}

func TestDegenerateLP(t *testing.T) {
	// Highly degenerate: many redundant constraints through the optimum.
	p := NewProblem()
	x := p.AddVariable(1, 0, math.Inf(1))
	y := p.AddVariable(1, 0, math.Inf(1))
	for i := 0; i < 10; i++ {
		p.AddConstraint([]int{x, y}, []float64{1, 1 + float64(i)*1e-9}, LE, 2)
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-2) > 1e-5 {
		t.Fatalf("obj = %v want 2", sol.Obj)
	}
}

// TestTransportationProblem exercises equality-heavy structure like the
// patrol-flow constraints.
func TestTransportationProblem(t *testing.T) {
	// 2 sources (supply 3, 4), 3 sinks (demand 2, 2, 3).
	// Cost matrix (maximize −cost): c = [[1,2,3],[2,1,2]].
	cost := [][]float64{{1, 2, 3}, {2, 1, 2}}
	supply := []float64{3, 4}
	demand := []float64{2, 2, 3}
	p := NewProblem()
	vars := make([][]int, 2)
	for i := 0; i < 2; i++ {
		vars[i] = make([]int, 3)
		for j := 0; j < 3; j++ {
			vars[i][j] = p.AddVariable(-cost[i][j], 0, math.Inf(1))
		}
	}
	for i := 0; i < 2; i++ {
		p.AddConstraint(vars[i], []float64{1, 1, 1}, EQ, supply[i])
	}
	for j := 0; j < 3; j++ {
		p.AddConstraint([]int{vars[0][j], vars[1][j]}, []float64{1, 1}, EQ, demand[j])
	}
	sol := solveOK(t, p)
	// Optimal: x00=2, x02=1, x11=2, x12=2 → cost 2+3+2+4=11.
	if math.Abs(sol.Obj+11) > 1e-6 {
		t.Fatalf("obj = %v want -11", sol.Obj)
	}
	// Flow conservation must hold exactly.
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 3; j++ {
			s += sol.X[vars[i][j]]
		}
		if math.Abs(s-supply[i]) > 1e-6 {
			t.Fatalf("supply %d violated: %v", i, s)
		}
	}
}

// TestRandomLPsFeasibleBounded property: for random LPs with box bounds and
// ≤ constraints with nonnegative coefficients and rhs, the solution must be
// feasible and optimal ≥ 0 (x=0 is always feasible).
func TestRandomLPsFeasibleBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(6)
		m := 1 + r.Intn(6)
		p := NewProblem()
		for j := 0; j < n; j++ {
			p.AddVariable(r.Float64()*2-0.5, 0, 1+r.Float64()*4)
		}
		rowsIdx := make([][]int, m)
		rowsCoef := make([][]float64, m)
		rowsRHS := make([]float64, m)
		for i := 0; i < m; i++ {
			var idx []int
			var coef []float64
			for j := 0; j < n; j++ {
				if r.Bernoulli(0.7) {
					idx = append(idx, j)
					coef = append(coef, r.Float64())
				}
			}
			if len(idx) == 0 {
				idx = append(idx, 0)
				coef = append(coef, 1)
			}
			rhs := r.Float64() * 3
			p.AddConstraint(idx, coef, LE, rhs)
			rowsIdx[i], rowsCoef[i], rowsRHS[i] = idx, coef, rhs
		}
		sol, err := Solve(p, Options{})
		if err != nil || sol.Status != Optimal {
			return false
		}
		// Check feasibility.
		for i := 0; i < m; i++ {
			var s float64
			for k, j := range rowsIdx[i] {
				s += rowsCoef[i][k] * sol.X[j]
			}
			if s > rowsRHS[i]+1e-6 {
				return false
			}
		}
		for j := 0; j < n; j++ {
			lo, hi := p.Bounds(j)
			if sol.X[j] < lo-1e-6 || sol.X[j] > hi+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{Optimal, Infeasible, Unbounded, IterLimit, Status(99)} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}
