// Package lp implements a bounded-variable revised-simplex linear-program
// solver. It is the optimization substrate beneath the patrol-planning MILP
// (problem P in Section VI of the paper), standing in for the commercial
// solver the authors used.
//
// Problems are stated as
//
//	maximize    cᵀx
//	subject to  a_iᵀx {≤,=,≥} b_i
//	            lo ≤ x ≤ hi        (lo finite; hi may be +Inf)
//
// The implementation is a two-phase primal simplex with an explicit dense
// basis inverse, Dantzig pricing with a Bland anti-cycling fallback, and
// periodic refactorization.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

const (
	// LE is a_iᵀx ≤ b_i.
	LE Op = iota
	// EQ is a_iᵀx = b_i.
	EQ
	// GE is a_iᵀx ≥ b_i.
	GE
)

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective is unbounded above.
	Unbounded
	// IterLimit means the iteration cap was reached.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// ErrBadModel is returned for structurally invalid problems.
var ErrBadModel = errors.New("lp: invalid model")

// entry is one nonzero of a constraint row.
type entry struct {
	col int
	val float64
}

type row struct {
	entries []entry
	op      Op
	rhs     float64
}

// Problem is a linear program under construction.
type Problem struct {
	obj  []float64
	lo   []float64
	hi   []float64
	rows []row
}

// NewProblem returns an empty maximization problem.
func NewProblem() *Problem { return &Problem{} }

// AddVariable appends a variable with the given objective coefficient and
// bounds, returning its index. The lower bound must be finite.
func (p *Problem) AddVariable(obj, lo, hi float64) int {
	p.obj = append(p.obj, obj)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	return len(p.obj) - 1
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.obj) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective overwrites the objective coefficient of variable j.
func (p *Problem) SetObjective(j int, c float64) { p.obj[j] = c }

// SetBounds overwrites the bounds of variable j.
func (p *Problem) SetBounds(j int, lo, hi float64) { p.lo[j], p.hi[j] = lo, hi }

// Bounds returns the bounds of variable j.
func (p *Problem) Bounds(j int) (lo, hi float64) { return p.lo[j], p.hi[j] }

// AddConstraint appends the constraint Σ coef[k]·x[idx[k]] op rhs.
// Duplicate indices are accumulated.
func (p *Problem) AddConstraint(idx []int, coef []float64, op Op, rhs float64) error {
	if len(idx) != len(coef) {
		return fmt.Errorf("%w: %d indices vs %d coefficients", ErrBadModel, len(idx), len(coef))
	}
	merged := map[int]float64{}
	for k, j := range idx {
		if j < 0 || j >= len(p.obj) {
			return fmt.Errorf("%w: variable %d out of range", ErrBadModel, j)
		}
		merged[j] += coef[k]
	}
	r := row{op: op, rhs: rhs}
	for j := 0; j < len(p.obj); j++ {
		if v, ok := merged[j]; ok && v != 0 {
			r.entries = append(r.entries, entry{j, v})
		}
	}
	p.rows = append(p.rows, r)
	return nil
}

// Clone deep-copies the problem (used by branch & bound to tighten bounds).
func (p *Problem) Clone() *Problem {
	q := &Problem{
		obj: append([]float64(nil), p.obj...),
		lo:  append([]float64(nil), p.lo...),
		hi:  append([]float64(nil), p.hi...),
	}
	q.rows = make([]row, len(p.rows))
	for i, r := range p.rows {
		q.rows[i] = row{op: r.op, rhs: r.rhs, entries: append([]entry(nil), r.entries...)}
	}
	return q
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	// X holds the values of the original (caller-added) variables.
	X []float64
	// Obj is the objective value cᵀX.
	Obj float64
	// Iterations is the total simplex iterations used.
	Iterations int
}

// Options tunes the solver.
type Options struct {
	// MaxIter caps total simplex iterations (default 50_000).
	MaxIter int
}

const (
	feasTol  = 1e-7
	optTol   = 1e-7
	pivotTol = 1e-9
)

// Solve runs the two-phase simplex.
func Solve(p *Problem, opts Options) (Solution, error) {
	if opts.MaxIter <= 0 {
		opts.MaxIter = 50000
	}
	n0 := len(p.obj)
	if n0 == 0 {
		return Solution{Status: Optimal, X: nil, Obj: 0}, nil
	}
	for j, lo := range p.lo {
		if math.IsInf(lo, -1) || math.IsNaN(lo) {
			return Solution{}, fmt.Errorf("%w: variable %d has non-finite lower bound", ErrBadModel, j)
		}
		if p.hi[j] < lo {
			return Solution{Status: Infeasible}, nil
		}
	}
	s := newSimplex(p)
	sol := s.run(opts.MaxIter)
	if sol.Status == Optimal || sol.Status == IterLimit {
		sol.X = make([]float64, n0)
		copy(sol.X, s.x[:n0])
		var obj float64
		for j := 0; j < n0; j++ {
			obj += p.obj[j] * sol.X[j]
		}
		sol.Obj = obj
	}
	return sol, nil
}

// simplex is the working state: the problem in computational standard form
// (equality rows with slack columns appended, then artificial columns).
type simplex struct {
	m, n int // constraints, structural+slack columns (artificials beyond n)
	cols [][]entry
	lo   []float64
	hi   []float64
	obj  []float64 // phase-2 objective over all columns
	rhs  []float64

	nArt    int
	basis   []int // basis[i] = column basic in row i
	inBasis []int // inBasis[j] = row index or -1
	atUpper []bool
	x       []float64
	binv    [][]float64

	iters int
}

func newSimplex(p *Problem) *simplex {
	m := len(p.rows)
	s := &simplex{m: m}
	// Structural columns.
	n0 := len(p.obj)
	s.cols = make([][]entry, n0, n0+m)
	s.lo = append([]float64(nil), p.lo...)
	s.hi = append([]float64(nil), p.hi...)
	s.obj = append([]float64(nil), p.obj...)
	s.rhs = make([]float64, m)
	for i, r := range p.rows {
		s.rhs[i] = r.rhs
		for _, e := range r.entries {
			s.cols[e.col] = append(s.cols[e.col], entry{i, e.val})
		}
	}
	// Slack columns.
	for i, r := range p.rows {
		switch r.op {
		case LE:
			j := s.addColumn(0, 0, math.Inf(1))
			s.cols[j] = append(s.cols[j], entry{i, 1})
		case GE:
			j := s.addColumn(0, 0, math.Inf(1))
			s.cols[j] = append(s.cols[j], entry{i, -1})
		}
	}
	s.n = len(s.cols)
	return s
}

func (s *simplex) addColumn(obj, lo, hi float64) int {
	s.cols = append(s.cols, nil)
	s.obj = append(s.obj, obj)
	s.lo = append(s.lo, lo)
	s.hi = append(s.hi, hi)
	return len(s.cols) - 1
}

// run executes phase 1 then phase 2.
func (s *simplex) run(maxIter int) Solution {
	// Initial nonbasic values: at lower bound (finite by construction).
	s.x = make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		s.x[j] = s.lo[j]
	}
	s.atUpper = make([]bool, s.n)
	// Residuals decide artificial signs.
	resid := make([]float64, s.m)
	copy(resid, s.rhs)
	for j := 0; j < s.n; j++ {
		if s.x[j] == 0 {
			continue
		}
		for _, e := range s.cols[j] {
			resid[e.row()] -= e.val * s.x[j]
		}
	}
	// Artificial columns form the initial basis. Each artificial carries the
	// sign of its row's residual, so the initial basis matrix is diag(sign)
	// and its inverse is the same diagonal.
	s.basis = make([]int, s.m)
	phase1Obj := make([]float64, s.n, s.n+s.m)
	signs := make([]float64, s.m)
	for i := 0; i < s.m; i++ {
		sign := 1.0
		if resid[i] < 0 {
			sign = -1
		}
		signs[i] = sign
		j := s.addColumn(0, 0, math.Inf(1))
		s.cols[j] = append(s.cols[j], entry{i, sign})
		phase1Obj = append(phase1Obj, -1) // maximize −Σ artificials
		s.basis[i] = j
		s.x = append(s.x, math.Abs(resid[i]))
		s.atUpper = append(s.atUpper, false)
	}
	s.nArt = s.m
	s.inBasis = make([]int, len(s.cols))
	for j := range s.inBasis {
		s.inBasis[j] = -1
	}
	for i, j := range s.basis {
		s.inBasis[j] = i
	}
	s.binv = identity(s.m)
	for i := 0; i < s.m; i++ {
		s.binv[i][i] = signs[i]
	}

	// Phase 1.
	st := s.iterate(phase1Obj, maxIter, true)
	if st == IterLimit {
		return Solution{Status: IterLimit, Iterations: s.iters}
	}
	var infeas float64
	for i := 0; i < s.m; i++ {
		if s.basis[i] >= s.n { // artificial basic
			infeas += s.x[s.basis[i]]
		}
	}
	if infeas > 1e-6 {
		return Solution{Status: Infeasible, Iterations: s.iters}
	}
	// Pin artificials to zero for phase 2.
	for j := s.n; j < len(s.cols); j++ {
		s.hi[j] = 0
	}
	// Phase 2 objective over all columns (artificials at 0).
	obj2 := make([]float64, len(s.cols))
	copy(obj2, s.obj)
	st = s.iterate(obj2, maxIter, false)
	return Solution{Status: st, Iterations: s.iters}
}

// iterate runs primal simplex iterations with the given objective until
// optimality, unboundedness, or the iteration cap. Degenerate stalls (long
// runs of zero-step pivots, common on flow polytopes) trigger a temporary
// switch to Bland's rule, which guarantees escape from any cycle.
func (s *simplex) iterate(obj []float64, maxIter int, phase1 bool) Status {
	nAll := len(s.cols)
	sinceRefactor := 0
	consecDegen := 0
	for {
		if s.iters >= maxIter {
			return IterLimit
		}
		s.iters++
		sinceRefactor++
		if sinceRefactor > 100 {
			if err := s.refactorize(); err != nil {
				return IterLimit
			}
			sinceRefactor = 0
		}
		useBland := consecDegen > 40

		// y = c_B B⁻¹.
		y := make([]float64, s.m)
		for i := 0; i < s.m; i++ {
			cb := obj[s.basis[i]]
			if cb == 0 {
				continue
			}
			for k := 0; k < s.m; k++ {
				y[k] += cb * s.binv[i][k]
			}
		}
		// Pricing.
		enter := -1
		var enterDir float64 // +1 entering increases, −1 decreases
		best := 0.0
		for j := 0; j < nAll; j++ {
			if s.inBasis[j] >= 0 {
				continue
			}
			if s.lo[j] == s.hi[j] {
				continue // fixed
			}
			d := obj[j]
			for _, e := range s.cols[j] {
				d -= y[e.row()] * e.val
			}
			var score float64
			var dir float64
			if !s.atUpper[j] && d > optTol {
				score, dir = d, 1
			} else if s.atUpper[j] && d < -optTol {
				score, dir = -d, -1
			} else {
				continue
			}
			if useBland {
				enter, enterDir = j, dir
				break
			}
			if score > best {
				best = score
				enter, enterDir = j, dir
			}
		}
		if enter < 0 {
			return Optimal
		}

		// w = B⁻¹ A_enter.
		w := make([]float64, s.m)
		for _, e := range s.cols[enter] {
			for i := 0; i < s.m; i++ {
				if v := s.binv[i][e.row()]; v != 0 {
					w[i] += v * e.val
				}
			}
		}

		// Ratio test: x_enter moves by enterDir·t, basic x_Bi -= enterDir·w_i·t.
		// Ties at the minimum ratio are broken toward the largest pivot
		// magnitude (Harris-style), which suppresses degenerate stalls.
		tMax := s.hi[enter] - s.lo[enter] // bound-flip distance
		leave := -1
		leaveToUpper := false
		bestPiv := 0.0
		for i := 0; i < s.m; i++ {
			delta := -enterDir * w[i]
			if math.Abs(delta) < pivotTol {
				continue
			}
			bj := s.basis[i]
			var t float64
			var toUpper bool
			if delta > 0 {
				if math.IsInf(s.hi[bj], 1) {
					continue
				}
				t = (s.hi[bj] - s.x[bj]) / delta
				toUpper = true
			} else {
				t = (s.lo[bj] - s.x[bj]) / delta
				toUpper = false
			}
			if t < -feasTol {
				t = 0
			}
			piv := math.Abs(delta)
			better := t < tMax-1e-9 ||
				(t < tMax+1e-9 && leave >= 0 && piv > bestPiv)
			if better {
				tMax = t
				leave = i
				leaveToUpper = toUpper
				bestPiv = piv
			}
		}
		if math.IsInf(tMax, 1) {
			if phase1 {
				// Phase-1 objective is bounded; numerical trouble.
				return IterLimit
			}
			return Unbounded
		}
		if tMax < 0 {
			tMax = 0
		}
		if tMax > 1e-9 {
			consecDegen = 0
		} else {
			consecDegen++
		}

		// Apply the step.
		s.x[enter] += enterDir * tMax
		for i := 0; i < s.m; i++ {
			s.x[s.basis[i]] -= enterDir * w[i] * tMax
		}
		if leave < 0 {
			// Bound flip: entering variable moved to its opposite bound.
			s.atUpper[enter] = enterDir > 0
			continue
		}
		// Pivot: entering replaces the leaving basic variable.
		out := s.basis[leave]
		s.x[out] = s.lo[out]
		s.atUpper[out] = false
		if leaveToUpper {
			s.x[out] = s.hi[out]
			s.atUpper[out] = true
		}
		s.basis[leave] = enter
		s.inBasis[out] = -1
		s.inBasis[enter] = leave
		// Elementary update of B⁻¹.
		piv := w[leave]
		if math.Abs(piv) < pivotTol {
			if err := s.refactorize(); err != nil {
				return IterLimit
			}
			continue
		}
		inv := 1 / piv
		rowL := s.binv[leave]
		for k := 0; k < s.m; k++ {
			rowL[k] *= inv
		}
		for i := 0; i < s.m; i++ {
			if i == leave || w[i] == 0 {
				continue
			}
			f := w[i]
			ri := s.binv[i]
			for k := 0; k < s.m; k++ {
				ri[k] -= f * rowL[k]
			}
		}
	}
}

// refactorize rebuilds B⁻¹ from the basis columns by Gauss-Jordan and
// recomputes basic variable values from the nonbasic ones.
func (s *simplex) refactorize() error {
	m := s.m
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, 2*m)
	}
	for i, j := range s.basis {
		for _, e := range s.cols[j] {
			a[e.row()][i] = e.val
		}
	}
	for i := 0; i < m; i++ {
		a[i][m+i] = 1
	}
	for c := 0; c < m; c++ {
		// Partial pivot.
		p := c
		for i := c + 1; i < m; i++ {
			if math.Abs(a[i][c]) > math.Abs(a[p][c]) {
				p = i
			}
		}
		if math.Abs(a[p][c]) < 1e-12 {
			return errors.New("lp: singular basis")
		}
		a[c], a[p] = a[p], a[c]
		inv := 1 / a[c][c]
		for k := c; k < 2*m; k++ {
			a[c][k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == c || a[i][c] == 0 {
				continue
			}
			f := a[i][c]
			for k := c; k < 2*m; k++ {
				a[i][k] -= f * a[c][k]
			}
		}
	}
	// binv maps: column j basic in row i means B column i is A_{basis[i]};
	// the inverse rows correspond to basis positions.
	for i := 0; i < m; i++ {
		for k := 0; k < m; k++ {
			s.binv[i][k] = a[i][m+k]
		}
	}
	// Recompute basic values: x_B = B⁻¹ (b − N x_N).
	resid := make([]float64, m)
	copy(resid, s.rhs)
	for j := 0; j < len(s.cols); j++ {
		if s.inBasis[j] >= 0 || s.x[j] == 0 {
			continue
		}
		for _, e := range s.cols[j] {
			resid[e.row()] -= e.val * s.x[j]
		}
	}
	for i := 0; i < m; i++ {
		var v float64
		for k := 0; k < m; k++ {
			v += s.binv[i][k] * resid[k]
		}
		s.x[s.basis[i]] = v
	}
	return nil
}

func identity(m int) [][]float64 {
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
		a[i][i] = 1
	}
	return a
}

// row accessor for entry when used in column-major storage: the col field
// holds the row index there.
func (e entry) row() int { return e.col }
