package paws

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// collector is a concurrency-safe ProgressFunc for tests.
type collector struct {
	mu     sync.Mutex
	events []ProgressEvent
}

func (c *collector) fn(e ProgressEvent) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collector) byStage(stage string) []ProgressEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []ProgressEvent
	for _, e := range c.events {
		if e.Stage == stage {
			out = append(out, e)
		}
	}
	return out
}

func TestWithProgressTrainPerWeakLearner(t *testing.T) {
	ctx := context.Background()
	svc := NewService(WithWorkers(2), WithSeed(7), WithThresholds(4), WithEnsembleSize(3), WithTreeDepth(5))
	sc, err := svc.Scenario(ctx, "rand:21")
	if err != nil {
		t.Fatal(err)
	}
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	// iWare-E kind: one event per ladder slice.
	var c collector
	if _, err := svc.Train(ctx, split.Train, WithKind(DTBiW), WithProgress(c.fn)); err != nil {
		t.Fatal(err)
	}
	evs := c.byStage("train")
	if len(evs) != 4 {
		t.Fatalf("iWare train emitted %d events, want 4 (ladder size): %+v", len(evs), evs)
	}
	maxCur := 0
	for _, e := range evs {
		if e.Total != 4 {
			t.Fatalf("event total %d, want 4: %+v", e.Total, e)
		}
		if e.Current > maxCur {
			maxCur = e.Current
		}
	}
	if maxCur != 4 {
		t.Fatalf("max current %d, want 4", maxCur)
	}
	// Plain kind: one event per bagging member.
	var p collector
	if _, err := svc.Train(ctx, split.Train, WithKind(DTB), WithProgress(p.fn)); err != nil {
		t.Fatal(err)
	}
	if evs := p.byStage("train"); len(evs) != 3 {
		t.Fatalf("plain train emitted %d events, want 3 (members): %+v", len(evs), evs)
	}
}

func TestWithProgressSimulatePerSeason(t *testing.T) {
	ctx := context.Background()
	svc := NewService(WithWorkers(2), WithSeed(5))
	var c collector
	rep, err := svc.Simulate(ctx, SimConfig{
		Park:     "rand:16",
		Seasons:  2,
		Policies: []string{"uniform", "historical"},
	}, WithProgress(c.fn))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seasons != 2 {
		t.Fatalf("report seasons %d", rep.Seasons)
	}
	evs := c.byStage("season")
	perPolicy := map[string][]int{}
	for _, e := range evs {
		if e.Total != 2 {
			t.Fatalf("season event total %d, want 2: %+v", e.Total, e)
		}
		perPolicy[e.Item] = append(perPolicy[e.Item], e.Current)
	}
	for _, policy := range []string{"uniform", "historical"} {
		got := perPolicy[policy]
		if len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("policy %s season events %v, want [1 2]", policy, got)
		}
	}
}

// TestProgressDoesNotChangeResults is the observational contract: the same
// computation with and without a progress callback returns byte-identical
// results.
func TestProgressDoesNotChangeResults(t *testing.T) {
	ctx := context.Background()
	cfg := SimConfig{Park: "rand:16", Seasons: 2, Policies: []string{"uniform", "historical"}}
	quiet := NewService(WithWorkers(4), WithSeed(9))
	baseline, err := quiet.Simulate(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	noisy := NewService(WithWorkers(4), WithSeed(9), WithProgress(c.fn))
	observed, err := noisy.Simulate(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(baseline)
	b, _ := json.Marshal(observed)
	if string(a) != string(b) {
		t.Fatalf("progress callback changed the report:\nwithout: %s\nwith:    %s", a, b)
	}
	if len(c.byStage("season")) == 0 {
		t.Fatal("no season events observed")
	}
}

func TestWithProgressTable2PerCell(t *testing.T) {
	ctx := context.Background()
	svc := NewService(WithWorkers(2), WithSeed(7), WithThresholds(3), WithEnsembleSize(3), WithTreeDepth(5))
	sc, err := svc.Scenario(ctx, "rand:21")
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	rows, err := svc.Table2(ctx, sc, "rand:21", WithKinds(DTB, DTBiW), WithProgress(c.fn))
	if err != nil {
		t.Fatal(err)
	}
	evs := c.byStage("cell")
	if len(evs) != len(rows) {
		t.Fatalf("%d cell events for %d rows", len(evs), len(rows))
	}
	for _, e := range evs {
		if e.Total != len(rows) || e.Item == "" {
			t.Fatalf("bad cell event %+v", e)
		}
	}
}
