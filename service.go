package paws

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"paws/internal/dataset"
	"paws/internal/geo"
	"paws/internal/ml"
	"paws/internal/obs"
	"paws/internal/par"
	"paws/internal/plan"
	"paws/internal/store"
)

// Service is the long-lived façade over the PAWS pipeline: one value that
// carries deployment-wide defaults (worker-pool size, seeds, ensemble
// shape — see the With* options) through every entry point, holds trained
// or persisted models by name, and answers prediction, risk-map and
// patrol-planning queries against them. Every method takes a
// context.Context, observed mid-computation (between weak-learner fits,
// batch-prediction chunks and planner solves), so callers get real
// cancellation and deadlines — the property the HTTP layer
// (internal/serve, cmd/pawsd) is built on.
//
// A Service is safe for concurrent use: registry mutation takes a write
// lock, queries a read lock, and the underlying models are immutable after
// training (the PlannerModel memo uses per-cell locks). Concurrent queries
// are deterministic — the same request returns byte-identical floats no
// matter what else is in flight.
type Service struct {
	defaults settings

	mu     sync.RWMutex
	models map[string]*ServedModel
	// store is the optional shared fleet store (AttachStore): models
	// published into it become visible to every replica polling the same
	// directory (see fleet.go).
	store *store.Store
	// gen numbers model registrations; caches key on it to tell two models
	// registered under the same name apart (pointer identity can be reused
	// by the allocator after the old model is collected).
	gen atomic.Uint64
}

// NewService builds a Service with the given default options; per-call
// options override them.
func NewService(opts ...Option) *Service {
	return &Service{
		defaults: settings{}.apply(opts),
		models:   map[string]*ServedModel{},
	}
}

// settingsFor merges per-call options over the service defaults.
func (s *Service) settingsFor(opts []Option) settings {
	return s.defaults.apply(opts)
}

// ErrUnknownModel is returned by queries naming an unregistered model.
var ErrUnknownModel = errors.New("paws: unknown model")

// ServedModel is a registered model plus the frozen serving context it
// answers queries against: the park it was trained on and the planner-model
// adapter holding per-cell feature vectors.
type ServedModel struct {
	Name  string
	Model *Model

	park *geo.Park
	pm   *PlannerModel
	// featureDim is the per-row width Predict accepts: park features plus
	// the patrol-coverage covariate.
	featureDim int
	// gen is the service-wide registration number (see Generation).
	gen uint64

	// provMu guards the mutable provenance below: a model registered from
	// memory gains a hash when it is published to the fleet store, after
	// registration.
	provMu sync.Mutex
	// source records where the artifact came from: "memory" (trained or
	// loaded in this process) or "store" (pulled from the shared fleet
	// store by a StoreSyncer).
	source string
	// hash is the sha256 of the model's PAWSMODL encoding, when known —
	// set for store-sourced models and for memory models that have been
	// published, so operators can tell which replica serves which artifact.
	hash string
	// storeGen is the fleet-store generation this entry corresponds to
	// (0 when the model never touched the store); the syncer re-registers
	// a name when the store's generation moves past it.
	storeGen uint64
}

// Generation returns the registration number of this entry, unique within
// its Service across the process lifetime — the correct cache-key
// ingredient for "same name, same model instance".
func (sm *ServedModel) Generation() uint64 { return sm.gen }

// Park returns the park the model serves.
func (sm *ServedModel) Park() *geo.Park { return sm.park }

// PlannerModel returns the serving planner adapter.
func (sm *ServedModel) PlannerModel() *PlannerModel { return sm.pm }

// FeatureDim returns the feature-vector width Predict expects.
func (sm *ServedModel) FeatureDim() int { return sm.featureDim }

// Model artifact sources reported by Provenance.
const (
	// SourceMemory marks a model trained or loaded inside this process.
	SourceMemory = "memory"
	// SourceStore marks a model pulled from the shared fleet store.
	SourceStore = "store"
)

// Provenance reports where the served artifact came from (SourceMemory or
// SourceStore), its content hash when known (sha256 of the PAWSMODL
// encoding; empty for unpublished memory models), and the fleet-store
// generation it corresponds to (0 when it never touched the store).
func (sm *ServedModel) Provenance() (source, hash string, storeGen uint64) {
	sm.provMu.Lock()
	defer sm.provMu.Unlock()
	return sm.source, sm.hash, sm.storeGen
}

// setProvenance updates the provenance fields (publishing a memory model
// stamps its hash and store generation after registration).
func (sm *ServedModel) setProvenance(source, hash string, storeGen uint64) {
	sm.provMu.Lock()
	defer sm.provMu.Unlock()
	sm.source, sm.hash, sm.storeGen = source, hash, storeGen
}

// ------------------------------------------------------------- compute API

// Scenario generates the park named by a spec — a preset ("MFNP", "QENP",
// "SWS") at the configured scale (WithScale; default full), or a procedural
// "rand:<seed>" park, which is already modest and ignores the scale — with
// its simulated history and datasets.
func (s *Service) Scenario(ctx context.Context, name string, opts ...Option) (*Scenario, error) {
	st := s.settingsFor(opts)
	parkCfg, simCfg, err := resolveConfigs(name, st.scale, st.seed)
	if err != nil {
		return nil, err
	}
	return NewCustomScenarioCtx(ctx, parkCfg, simCfg)
}

// Train fits a model on training points under the merged options
// (WithKind, WithEnsembleSize, WithThresholds, …), observing ctx between
// weak-learner fits.
func (s *Service) Train(ctx context.Context, train []dataset.Point, opts ...Option) (*Model, error) {
	return TrainCtx(ctx, train, s.settingsFor(opts).trainOptions())
}

// PlannerModel adapts a trained model for planning and map generation,
// freezing features as of dataset step prevStep.
func (s *Service) PlannerModel(ctx context.Context, m *Model, d *dataset.Dataset, prevStep int, opts ...Option) (*PlannerModel, error) {
	return NewPlannerModelCtx(ctx, m, d, prevStep, s.settingsFor(opts).workers)
}

// Table1 regenerates the Table I dataset statistics.
func (s *Service) Table1(ctx context.Context, opts ...Option) ([]Table1Row, error) {
	st := s.settingsFor(opts)
	return RunTable1Ctx(ctx, st.seed, st.workers)
}

// Table2 runs the Table II AUC sweep on one scenario. WithKind or WithKinds
// restricts the model variants.
func (s *Service) Table2(ctx context.Context, sc *Scenario, name string, opts ...Option) ([]Table2Row, error) {
	return RunTable2ForScenarioCtx(ctx, sc, name, s.settingsFor(opts).table2Options())
}

// Fig4 computes the positive-rate-vs-effort-percentile curves.
func (s *Service) Fig4(ctx context.Context, sc *Scenario, name string, testYear int, opts ...Option) (Fig4Series, error) {
	st := s.settingsFor(opts)
	trainYears := st.trainYears
	if trainYears <= 0 {
		trainYears = 3
	}
	return RunFig4Ctx(ctx, sc, name, testYear, trainYears, st.dry)
}

// Fig6 trains the configured model kind (default GPB-iW) and evaluates the
// Fig. 6 risk/uncertainty maps.
func (s *Service) Fig6(ctx context.Context, sc *Scenario, testYear int, opts ...Option) (*Fig6Maps, error) {
	st := s.settingsFor(opts)
	kind := st.kind
	if !st.kindSet {
		kind = GPBiW
	}
	trainYears := st.trainYears
	if trainYears <= 0 {
		trainYears = 3
	}
	return RunFig6Ctx(ctx, sc, kind, testYear, trainYears, st.trainOptions())
}

// Fig7 runs the GP-vs-bagged-trees uncertainty correlation study.
func (s *Service) Fig7(ctx context.Context, sc *Scenario, testYear int, opts ...Option) (*Fig7Result, error) {
	st := s.settingsFor(opts)
	trainYears := st.trainYears
	if trainYears <= 0 {
		trainYears = 3
	}
	return RunFig7Ctx(ctx, sc, testYear, trainYears, st.trainOptions())
}

// PlanStudy trains a planning model and builds per-post regions for the
// Fig. 8/9 sweeps (WithPosts, WithRegionShape, WithPlanHorizon, WithBetas,
// WithSegmentCounts).
func (s *Service) PlanStudy(ctx context.Context, sc *Scenario, opts ...Option) (*PlanStudy, error) {
	return NewPlanStudyCtx(ctx, sc, s.settingsFor(opts).planStudyOptions())
}

// Table3 reproduces the Table III field-test trials on one scenario.
func (s *Service) Table3(ctx context.Context, sc *Scenario, name string, blockSize int, trialMonths []int, opts ...Option) ([]Table3Trial, error) {
	return RunTable3ForScenarioCtx(ctx, sc, name, blockSize, trialMonths, s.settingsFor(opts).table3Options())
}

// ------------------------------------------------------------ registry API

// AddModel registers a trained model under a name, freezing its serving
// context from the dataset as of step prevStep (the effort of that step
// becomes the patrol-coverage covariate every query sees). Re-registering a
// name replaces the entry.
func (s *Service) AddModel(ctx context.Context, name string, m *Model, d *dataset.Dataset, prevStep int, opts ...Option) (*ServedModel, error) {
	if name == "" {
		return nil, errors.New("paws: model name must be non-empty")
	}
	if nf, want := m.NumFeatures(), d.Park.NumFeatures()+1; nf > 0 && nf != want {
		return nil, fmt.Errorf("paws: model %q was trained on %d features but the park needs %d — wrong park, scale or seed for this model file?", name, nf, want)
	}
	pm, err := NewPlannerModelCtx(ctx, m, d, prevStep, s.settingsFor(opts).workers)
	if err != nil {
		return nil, err
	}
	sm := &ServedModel{
		Name:       name,
		Model:      m,
		park:       d.Park,
		pm:         pm,
		featureDim: d.Park.NumFeatures() + 1,
		gen:        s.gen.Add(1),
		source:     SourceMemory,
	}
	s.mu.Lock()
	s.models[name] = sm
	s.mu.Unlock()
	return sm, nil
}

// LoadModelFileInto loads a persisted model (SaveFile) and registers it
// under a name with AddModel's serving context.
func (s *Service) LoadModelFileInto(ctx context.Context, name, path string, d *dataset.Dataset, prevStep int, opts ...Option) (*ServedModel, error) {
	m, err := LoadModelFile(path)
	if err != nil {
		return nil, err
	}
	return s.AddModel(ctx, name, m, d, prevStep, opts...)
}

// Served returns the registered model entry for a name.
func (s *Service) Served(name string) (*ServedModel, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sm, ok := s.models[name]
	return sm, ok
}

// ServedModels lists the registered model entries sorted by name — the
// discovery surface behind GET /v1/models.
func (s *Service) ServedModels() []*ServedModel {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*ServedModel, 0, len(s.models))
	for _, sm := range s.models {
		out = append(out, sm)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// ModelNames lists the registered model names, sorted.
func (s *Service) ModelNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.models))
	for n := range s.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// served resolves a name or fails with ErrUnknownModel.
func (s *Service) served(name string) (*ServedModel, error) {
	if sm, ok := s.Served(name); ok {
		return sm, nil
	}
	return nil, fmt.Errorf("%w %q (registered: %v)", ErrUnknownModel, name, s.ModelNames())
}

// predictChunkSize is the batched-prediction granularity of the serving
// path: requests are scored in chunks of this many rows so cancellation is
// observed with useful latency while batch fast paths stay amortized. Chunk
// boundaries never change the floats.
const predictChunkSize = 256

// Predict scores feature vectors against a registered model at one planned
// patrol effort, through the model's batched fast path, observing ctx
// between chunks. Output is deterministic and independent of worker count
// and concurrent load.
func (s *Service) Predict(ctx context.Context, name string, X [][]float64, effort float64, opts ...Option) ([]float64, error) {
	sm, err := s.served(name)
	if err != nil {
		return nil, err
	}
	for i, row := range X {
		if len(row) != sm.featureDim {
			return nil, fmt.Errorf("paws: predict row %d has %d features, model %q expects %d", i, len(row), name, sm.featureDim)
		}
	}
	out := make([]float64, len(X))
	err = par.ForEachSliceCtx(ctx, s.settingsFor(opts).workers, len(X), predictChunkSize, func(lo, hi int) {
		copy(out[lo:hi], sm.Model.PredictForEffortBatch(X[lo:hi], effort))
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PredictWithVariance is Predict returning the model's uncertainty too.
func (s *Service) PredictWithVariance(ctx context.Context, name string, X [][]float64, effort float64, opts ...Option) (p, variance []float64, err error) {
	sm, err := s.served(name)
	if err != nil {
		return nil, nil, err
	}
	for i, row := range X {
		if len(row) != sm.featureDim {
			return nil, nil, fmt.Errorf("paws: predict row %d has %d features, model %q expects %d", i, len(row), name, sm.featureDim)
		}
	}
	p = make([]float64, len(X))
	variance = make([]float64, len(X))
	err = par.ForEachSliceCtx(ctx, s.settingsFor(opts).workers, len(X), predictChunkSize, func(lo, hi int) {
		ps, vs := sm.Model.PredictWithVarianceBatch(X[lo:hi], effort)
		copy(p[lo:hi], ps)
		copy(variance[lo:hi], vs)
	})
	if err != nil {
		return nil, nil, err
	}
	return p, variance, nil
}

// PredictCells scores park cells of a registered model's serving context at
// one planned effort, using the frozen per-cell feature vectors — the query
// rangers actually ask ("how risky are these cells?").
func (s *Service) PredictCells(ctx context.Context, name string, cells []int, effort float64, opts ...Option) ([]float64, error) {
	sm, err := s.served(name)
	if err != nil {
		return nil, err
	}
	n := sm.pm.features.Rows
	X := ml.NewMatrix(len(cells), sm.pm.features.Cols)
	for i, c := range cells {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("paws: cell %d out of range [0, %d)", c, n)
		}
		copy(X.Row(i), sm.pm.features.Row(c))
	}
	out := make([]float64, X.Rows)
	err = par.ForEachSliceCtx(ctx, s.settingsFor(opts).workers, X.Rows, predictChunkSize, func(lo, hi int) {
		copy(out[lo:hi], sm.Model.PredictForEffortFlat(X.Slice(lo, hi), effort))
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RiskMaps evaluates the park-wide risk and uncertainty maps of a
// registered model at one planned effort in a single sweep, observing ctx
// between batch chunks.
func (s *Service) RiskMaps(ctx context.Context, name string, effort float64) (risk, uncertainty []float64, err error) {
	sm, err := s.served(name)
	if err != nil {
		return nil, nil, err
	}
	return sm.pm.MapsCtx(ctx, effort)
}

// PlanResult is a computed patrol plan in park coordinates — the deployment
// artifact /v1/plan hands out.
type PlanResult struct {
	Model string
	Post  int
	Beta  float64
	// Cells are the park cell ids of the planning region.
	Cells []int
	// Effort[i] is the planned patrol effort for Cells[i].
	Effort []float64
	// Routes are executable patrols: sequences of park cell ids starting and
	// ending at the post.
	Routes [][]int
	// Objective is the robust utility of the plan; RuntimeMS the solve time.
	Objective float64
	RuntimeMS float64
	// Hierarchical reports that the region was targeted by the coarse
	// super-cell pass (WithHierarchical, or automatic above HierAutoCells).
	Hierarchical bool
}

// HierAutoCells is the park size at which Service.Plan switches to
// hierarchical planning by default: above it, a flat breadth-first region
// around the post covers so little of the park that region choice, not the
// solve, dominates plan quality. WithHierarchical overrides the default
// either way.
const HierAutoCells = 20_000

// Plan computes a robust patrol plan for one patrol post of a registered
// model (post indexes the park's post list). Region shape and planning
// horizon come from the merged options (WithRegionShape, WithPlanHorizon,
// WithSolver); beta is the robustness weight. The context is observed
// before and after the solve (the LP/MILP solve itself is not
// interruptible); keep regions bounded via WithRegionShape for
// latency-sensitive serving.
//
// On parks of HierAutoCells cells or more (or when WithHierarchical(true) is
// set), the region is targeted hierarchically: a coarse Frank-Wolfe pass over
// aggregated super-cells decides where in the park the post's bounded region
// should grow, so /v1/plan stays interactive at 10^6 cells.
func (s *Service) Plan(ctx context.Context, name string, post int, beta float64, opts ...Option) (*PlanResult, error) {
	sm, err := s.served(name)
	if err != nil {
		return nil, err
	}
	if post < 0 || post >= len(sm.park.Posts) {
		return nil, fmt.Errorf("paws: post %d out of range: park has %d patrol posts", post, len(sm.park.Posts))
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("paws: beta %v out of range [0, 1]", beta)
	}
	st := s.settingsFor(opts)
	radius, maxCells := st.radius, st.maxCells
	if radius <= 0 {
		radius = 4
	}
	if maxCells <= 0 {
		maxCells = 40
	}
	t, k, segments := st.horizonT, st.horizonK, st.segments
	if t <= 0 {
		t = 8
	}
	if k <= 0 {
		k = 2
	}
	if segments <= 0 {
		segments = 8
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	cfg := plan.Config{T: t, K: k, Segments: segments, Beta: beta, Solver: st.solver, Workers: st.workers}
	useHier := st.hierarchical
	if !st.hierSet {
		useHier = sm.park.Grid.NumCells() >= HierAutoCells
	}
	var region *plan.Region
	var p *plan.Plan
	if useHier {
		p, region, err = plan.SolveHierarchicalCtx(ctx, sm.park, sm.park.Posts[post], sm.pm,
			cfg, plan.HierOptions{FineMaxCells: maxCells, Workers: st.workers})
	} else {
		region, err = plan.NewRegion(sm.park, sm.park.Posts[post], radius, maxCells)
		if err != nil {
			return nil, err
		}
		endSolve := obs.StartSpan(ctx, "solve", fmt.Sprintf("post %d", post))
		p, err = plan.Solve(region, sm.pm, cfg)
		endSolve()
	}
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	kRoutes := int(cfg.K)
	if kRoutes < 1 {
		kRoutes = 1
	}
	endRoutes := obs.StartSpan(ctx, "routes", fmt.Sprintf("post %d", post))
	routes, err := plan.ExtractRoutes(region, p.Effort, cfg.T, kRoutes)
	endRoutes()
	if err != nil {
		return nil, err
	}
	res := &PlanResult{
		Model:        name,
		Post:         post,
		Beta:         beta,
		Cells:        append([]int(nil), region.Cells...),
		Effort:       append([]float64(nil), p.Effort...),
		Objective:    p.Objective,
		RuntimeMS:    float64(p.Runtime.Microseconds()) / 1000,
		Hierarchical: useHier,
	}
	for _, r := range routes {
		res.Routes = append(res.Routes, r.ParkCells(region))
	}
	return res, nil
}
