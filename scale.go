package paws

import (
	"fmt"

	"paws/internal/geo"
	"paws/internal/poach"
)

// Scale selects between the paper's full-size parks and reduced variants
// that preserve each park's qualitative character (shape, seasonality,
// imbalance) at roughly 1/8 the cell count — used by benchmarks, examples
// and quick runs of the cmd tools.
type Scale int

const (
	// ScaleFull uses the Table I-calibrated presets (4,613 / 2,522 / 3,750
	// cells, 6 years of history).
	ScaleFull Scale = iota
	// ScaleSmall uses reduced parks (≈400–600 cells, 5 years).
	ScaleSmall
)

// ParseScale converts "full"/"small" to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "full":
		return ScaleFull, nil
	case "small":
		return ScaleSmall, nil
	}
	return 0, fmt.Errorf("paws: unknown scale %q (want full or small)", s)
}

// ScenarioAt generates the park named by a spec at the requested scale.
func ScenarioAt(name string, scale Scale, seed int64) (*Scenario, error) {
	parkCfg, simCfg, err := resolveConfigs(name, scale, seed)
	if err != nil {
		return nil, err
	}
	return NewCustomScenario(parkCfg, simCfg)
}

// specConfigs resolves a full-scale park spec — a preset name or a
// rand:<seed> procedural spec — to its park and simulation configurations.
// Preset histories take their parameters from the paper's calibration;
// procedural parks derive theirs from the spec seed (poach.RandomSim).
func specConfigs(name string, seed int64) (geo.ParkConfig, poach.SimConfig, error) {
	if parkCfg, ok := geo.PresetByName(name, seed); ok {
		simCfg, _ := poach.SimByName(name, seed+1)
		return parkCfg, simCfg, nil
	}
	if parkCfg, ok, err := geo.ParseRandSpec(name); ok {
		if err != nil {
			return geo.ParkConfig{}, poach.SimConfig{}, err
		}
		return parkCfg, poach.RandomSim(parkCfg, seed+1), nil
	}
	return geo.ParkConfig{}, poach.SimConfig{}, fmt.Errorf("paws: unknown park spec %q (want %s)", name, geo.SpecHelp)
}

// ValidateParkSpec checks that name is a known park preset (MFNP, QENP,
// SWS) or a well-formed procedural "rand:<seed>" spec, without generating
// anything — the submit-time validation surface of the async job API.
func ValidateParkSpec(name string) error {
	_, _, err := specConfigs(name, 0)
	return err
}

// resolveConfigs is specConfigs honouring the scale: presets have reduced
// ScaleSmall variants, while procedural parks are already modest and ignore
// the scale.
func resolveConfigs(name string, scale Scale, seed int64) (geo.ParkConfig, poach.SimConfig, error) {
	if scale == ScaleSmall && !geo.IsRandSpec(name) {
		return smallConfigs(name, seed)
	}
	return specConfigs(name, seed)
}

// smallConfigs mirrors the presets at reduced size.
func smallConfigs(name string, seed int64) (geo.ParkConfig, poach.SimConfig, error) {
	switch name {
	case "MFNP":
		return geo.ParkConfig{
				Name: "MFNP-small", Seed: seed, W: 34, H: 34, TargetCells: 580,
				Shape: geo.ShapeRound, NumRivers: 3, NumRoads: 3, NumVillages: 4,
				NumPosts: 4, ExtraFeatures: 4,
			}, poach.SimConfig{
				Seed: seed + 1, Months: 60,
				Patrol: poach.PatrolConfig{
					PatrolsPerPostMonth: 4, LengthKM: 12, RecordEvery: 1,
					RoadBias: 0.25, AttractBias: 0.6,
				},
				TargetPositiveRate: 0.143, Deterrence: 0.35,
				DetectLambda: 0.35, HiddenAmp: 1.8, TemporalNoise: 1.2, SignalGain: 1.9,
				NonPoachingRate: 0.10,
			}, nil
	case "QENP":
		return geo.ParkConfig{
				Name: "QENP-small", Seed: seed, W: 44, H: 18, TargetCells: 400,
				Shape: geo.ShapeElongated, NumRivers: 2, NumRoads: 3, NumVillages: 3,
				NumPosts: 4, ExtraFeatures: 3,
			}, poach.SimConfig{
				Seed: seed + 1, Months: 60,
				Patrol: poach.PatrolConfig{
					PatrolsPerPostMonth: 5, LengthKM: 12, RecordEvery: 1,
					RoadBias: 0.3, AttractBias: 0.5,
				},
				TargetPositiveRate: 0.047, Deterrence: 0.35,
				DetectLambda: 0.35, HiddenAmp: 1.7, TemporalNoise: 1.2, SignalGain: 1.9,
				NonPoachingRate: 0.10,
			}, nil
	case "SWS":
		return geo.ParkConfig{
				Name: "SWS-small", Seed: seed, W: 32, H: 31, TargetCells: 480,
				Shape: geo.ShapeIrregular, NumRivers: 3, NumRoads: 2, NumVillages: 3,
				NumPosts: 3, ExtraFeatures: 4, Seasonal: true,
			}, poach.SimConfig{
				Seed: seed + 1, Months: 60,
				Patrol: poach.PatrolConfig{
					PatrolsPerPostMonth: 8, LengthKM: 28, RecordEvery: 3,
					RoadBias: 0.5, AttractBias: 0.35, WetSeasonRiverBlock: true,
				},
				TargetPositiveRate: 0.012, Deterrence: 0.25, SeasonalAmp: 0.8,
				DetectLambda: 0.18, HiddenAmp: 1.8, TemporalNoise: 1.3, SignalGain: 3.2,
				NonPoachingRate: 0.05,
			}, nil
	}
	return geo.ParkConfig{}, poach.SimConfig{}, fmt.Errorf("paws: unknown park %q (want %s)", name, geo.SpecHelp)
}

// TrainOptionsAt returns paper-flavoured training options for a park at a
// scale: 20 thresholds for the Uganda parks and 10 for SWS (Section IV),
// balanced bagging for SWS (Section V-A), scaled down for ScaleSmall.
func TrainOptionsAt(park string, kind ModelKind, scale Scale, seed int64) TrainOptions {
	o := TrainOptions{Kind: kind, Seed: seed}
	switch park {
	case "SWS":
		o.Thresholds = 10
		o.Balanced = true
	default:
		o.Thresholds = 20
	}
	if scale == ScaleSmall {
		o.Thresholds = min(o.Thresholds, 6)
		o.Members = 5
		o.GPMaxTrain = 80
	} else {
		o.Members = 8
		o.GPMaxTrain = 120
	}
	return o
}
