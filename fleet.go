package paws

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"paws/internal/store"
)

// Fleet serving: a Service can attach a shared on-disk model store
// (internal/store) so N pawsd replicas behave as one deployment. A replica
// that trains a model publishes its PAWSMODL encoding to the store; every
// other replica's StoreSyncer notices the index change on its next poll,
// pulls the artifact, regenerates the serving context deterministically
// from the entry's park/scale/seed, and registers the model locally — so
// any replica can serve any model without the processes ever talking to
// each other.

// AttachStore connects the service to a shared fleet store. Publishing and
// syncing are explicit (PublishModel, StoreSyncer); attaching alone changes
// no behavior.
func (s *Service) AttachStore(st *store.Store) {
	s.mu.Lock()
	s.store = st
	s.mu.Unlock()
}

// ModelStore returns the attached fleet store (nil when detached).
func (s *Service) ModelStore() *store.Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store
}

// DefaultSeed returns the service-wide root seed (WithSeed at
// construction) — the value a publish must record so peers regenerate the
// same serving context.
func (s *Service) DefaultSeed() int64 { return s.defaults.seed }

// StoreMeta identifies the serving context of a model being published: the
// park spec, scale string ("small"/"full") and root seed that regenerate
// its feature rasters deterministically on any replica.
type StoreMeta struct {
	Park  string
	Scale string
	Seed  int64
}

// PublishModel writes a registered model's artifact into the attached
// fleet store and stamps the served entry with the assigned content hash
// and store generation. The serving entry itself is untouched (same
// instance, same registration generation — caches stay valid).
func (s *Service) PublishModel(name string, meta StoreMeta) (store.Entry, error) {
	st := s.ModelStore()
	if st == nil {
		return store.Entry{}, fmt.Errorf("paws: publish %q: no fleet store attached", name)
	}
	sm, err := s.served(name)
	if err != nil {
		return store.Entry{}, err
	}
	blob, err := sm.Model.SaveBytes()
	if err != nil {
		return store.Entry{}, err
	}
	e, err := st.Publish(store.Entry{
		Name:  name,
		Kind:  sm.Model.Kind.String(),
		Park:  meta.Park,
		Scale: meta.Scale,
		Seed:  meta.Seed,
	}, blob)
	if err != nil {
		return store.Entry{}, err
	}
	// The local entry already serves these exact bytes; only its fleet
	// provenance changes. Source stays "memory" — this replica trained it.
	source, _, _ := sm.Provenance()
	sm.setProvenance(source, e.Hash, e.Generation)
	return e, nil
}

// StoreSyncer keeps one Service's registry caught up with the shared fleet
// store: SyncOnce compares the index against what is registered and pulls
// every entry whose store generation moved ahead, rebuilding the serving
// context (park scenario → dataset → planner model) deterministically from
// the entry's park/scale/seed. Scenario generation is the expensive step,
// so scenarios are cached per (park, scale, seed) across syncs.
//
// A syncer belongs to one replica; methods are safe for concurrent use.
type StoreSyncer struct {
	svc *Service
	st  *store.Store

	mu        sync.Mutex
	lastMtime time.Time
	lastSize  int64
	synced    bool
	scenarios map[string]*Scenario
}

// NewStoreSyncer builds a syncer over the service's attached store.
func NewStoreSyncer(svc *Service) (*StoreSyncer, error) {
	st := svc.ModelStore()
	if st == nil {
		return nil, fmt.Errorf("paws: store syncer: no fleet store attached")
	}
	return &StoreSyncer{svc: svc, st: st, scenarios: map[string]*Scenario{}}, nil
}

// SyncOnce reconciles the registry with the store index once and returns
// how many models were (re-)registered. An unchanged index (same mtime and
// size as the last fully successful sync) is a cheap no-op. Entries that
// fail to load leave the rest of the sync intact; their errors are joined
// and the index is re-examined on the next poll.
func (y *StoreSyncer) SyncOnce(ctx context.Context) (int, error) {
	y.mu.Lock()
	defer y.mu.Unlock()
	mtime, size, err := y.st.Stat()
	if err != nil {
		return 0, err
	}
	if y.synced && mtime.Equal(y.lastMtime) && size == y.lastSize {
		return 0, nil
	}
	idx, mtime, err := y.st.Load()
	if err != nil {
		return 0, err
	}
	names := make([]string, 0, len(idx.Models))
	for n := range idx.Models {
		names = append(names, n)
	}
	sort.Strings(names)
	registered := 0
	var errs []error
	for _, n := range names {
		e := idx.Models[n]
		if sm, ok := y.svc.Served(n); ok {
			if _, _, gen := sm.Provenance(); gen >= e.Generation {
				continue // already serving this generation (or published it)
			}
		}
		if err := y.registerLocked(ctx, e); err != nil {
			errs = append(errs, fmt.Errorf("sync %q: %w", n, err))
			continue
		}
		registered++
	}
	if len(errs) > 0 {
		// Leave the stat checkpoint behind so the next poll retries the
		// failed entries even if the index does not change again.
		return registered, joinErrors(errs)
	}
	y.lastMtime, y.lastSize, y.synced = mtime, size, true
	return registered, nil
}

// registerLocked pulls one entry's artifact and registers it; callers hold
// the syncer lock.
func (y *StoreSyncer) registerLocked(ctx context.Context, e store.Entry) error {
	blob, err := y.st.Get(e.Hash)
	if err != nil {
		return err
	}
	m, err := LoadModelBytes(blob)
	if err != nil {
		return err
	}
	sc, err := y.scenarioLocked(ctx, e)
	if err != nil {
		return err
	}
	// Freeze the serving context at the last pre-test step — the same
	// convention the trainer used, so both replicas answer identically.
	testYear := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	testFrom, _ := sc.Data.StepsForYear(testYear)
	sm, err := y.svc.AddModel(ctx, e.Name, m, sc.Data, testFrom-1)
	if err != nil {
		return err
	}
	sm.setProvenance(SourceStore, e.Hash, e.Generation)
	return nil
}

// scenarioLocked regenerates (or reuses) the scenario behind an entry's
// serving context.
func (y *StoreSyncer) scenarioLocked(ctx context.Context, e store.Entry) (*Scenario, error) {
	scaleStr := e.Scale
	if scaleStr == "" {
		scaleStr = "small"
	}
	scale, err := ParseScale(scaleStr)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s|%s|%d", e.Park, scaleStr, e.Seed)
	if sc, ok := y.scenarios[key]; ok {
		return sc, nil
	}
	sc, err := y.svc.Scenario(ctx, e.Park, WithScale(scale), WithSeed(e.Seed))
	if err != nil {
		return nil, err
	}
	y.scenarios[key] = sc
	return sc, nil
}

// Run polls SyncOnce at the given interval until ctx is done. onError (nil
// allowed) observes sync failures; the loop keeps polling through them.
func (y *StoreSyncer) Run(ctx context.Context, interval time.Duration, onError func(error)) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := y.SyncOnce(ctx); err != nil && onError != nil {
				onError(err)
			}
		}
	}
}

// joinErrors flattens accumulated sync errors into one.
func joinErrors(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	return fmt.Errorf("%d models failed to sync (first: %w)", len(errs), errs[0])
}
