package paws

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"paws/internal/obs"
)

// The observability layer must be strictly observational: attaching a
// trace to the context changes which spans get recorded and nothing
// else. These tests run the two span-instrumented pipelines with and
// without a trace, across worker counts, and require byte-identical
// reports — then check the traced runs actually recorded the
// compute-stage spans (so a silently detached trace cannot make the
// equality vacuous).

func spanNames(rec *obs.Recorder) map[string]bool {
	names := map[string]bool{}
	for _, tr := range rec.Recent() {
		for _, sp := range tr.Spans {
			names[sp.Name] = true
		}
	}
	return names
}

func TestSimulateByteIdenticalUnderTracing(t *testing.T) {
	cfg := SimConfig{Park: "rand:16", Seasons: 2, BootstrapMonths: 12, Policies: []string{"paws", "uniform"}}
	rec := obs.NewRecorder(16)
	var want []byte
	for _, workers := range []int{1, 4, 8} {
		for _, traced := range []bool{false, true} {
			ctx := context.Background()
			var tr *obs.Trace
			if traced {
				tr = rec.Start("", "test:simulate")
				ctx = obs.WithTrace(ctx, tr)
			}
			svc := NewService(WithSeed(7), WithScale(ScaleSmall), WithWorkers(workers))
			rep, err := svc.Simulate(ctx, cfg)
			if tr != nil {
				tr.Finish("ok")
			}
			if err != nil {
				t.Fatalf("workers=%d traced=%v: %v", workers, traced, err)
			}
			got, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("report differs at workers=%d traced=%v", workers, traced)
			}
		}
	}
	names := spanNames(rec)
	for _, stage := range []string{"plan", "patrol", "build", "train", "riskmap", "routes"} {
		if !names[stage] {
			t.Fatalf("traced simulate missing %q span (got %v)", stage, names)
		}
	}
}

func TestCampaignByteIdenticalUnderTracing(t *testing.T) {
	cfg := CampaignConfig{
		Parks:           []string{"rand:16"},
		Policies:        []string{"paws", "uniform"},
		Seeds:           []int64{1, 2},
		SeasonCounts:    []int{1},
		SeasonMonths:    1,
		BootstrapMonths: 12,
	}
	rec := obs.NewRecorder(16)
	var want []byte
	for _, workers := range []int{1, 4, 8} {
		for _, traced := range []bool{false, true} {
			ctx := context.Background()
			var tr *obs.Trace
			if traced {
				tr = rec.Start("", "test:campaign")
				ctx = obs.WithTrace(ctx, tr)
			}
			svc := NewService(WithScale(ScaleSmall), WithWorkers(workers))
			rep, err := svc.Campaign(ctx, cfg)
			if tr != nil {
				tr.Finish("ok")
			}
			if err != nil {
				t.Fatalf("workers=%d traced=%v: %v", workers, traced, err)
			}
			got, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("campaign report differs at workers=%d traced=%v", workers, traced)
			}
		}
	}
	names := spanNames(rec)
	// The per-cell span proves the trace crossed the campaign's internal
	// job-manager boundary; train proves it reached the paws pipeline.
	for _, stage := range []string{"cell", "plan", "train"} {
		if !names[stage] {
			t.Fatalf("traced campaign missing %q span (got %v)", stage, names)
		}
	}
}
