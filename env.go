package paws

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"paws/internal/env"
	"paws/internal/geo"
	"paws/internal/par"
	"paws/internal/poach"
	"paws/internal/sim"
)

// This file is the service-level surface of the stepped environment
// (internal/env): NewEnv resolves a park spec into a live local Env — the
// constructor behind pawsd's POST /v1/envs — and SimulateRemote replays the
// whole Simulate comparison against remote /v1/envs sessions, producing a
// report byte-identical to the local one.

// EnvConfig configures Service.NewEnv: one episode of the closed loop as a
// stepped environment. Zero values select the same defaults as SimConfig,
// so an Env episode and a Simulate policy run at the same park and seed are
// the same computation.
type EnvConfig struct {
	// Park is a park spec: MFNP, QENP, SWS or rand:<seed>.
	Park string
	// Seasons is the episode length in seasons (default 4).
	Seasons int
	// SeasonMonths is the months per season (default 3).
	SeasonMonths int
	// BootstrapMonths is the historical record simulated before the episode
	// (default 24).
	BootstrapMonths int
	// BudgetKM is the per-month patrol budget; 0 derives the park's ranger
	// capacity.
	BudgetKM float64
	// Attacker selects the poacher response behaviour (default adaptive,
	// matching Simulate).
	Attacker poach.AttackerConfig
}

// withDefaults validates and fills cfg, mirroring SimConfig.withDefaults so
// the two surfaces accept and reject identically.
func (cfg EnvConfig) withDefaults() (EnvConfig, error) {
	if cfg.Park == "" {
		cfg.Park = "MFNP"
	}
	if cfg.Seasons < 0 {
		return cfg, fmt.Errorf("paws: seasons must be ≥ 1, got %d", cfg.Seasons)
	}
	if cfg.Seasons == 0 {
		cfg.Seasons = 4
	}
	if err := validateSimRanges(cfg.SeasonMonths, cfg.BootstrapMonths, cfg.BudgetKM, 0); err != nil {
		return cfg, err
	}
	if cfg.Attacker.Kind == "" {
		cfg.Attacker.Kind = poach.AttackerAdaptive
	}
	if err := poach.ValidateAttackerKind(cfg.Attacker.Kind); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// Validate checks an environment configuration without building anything —
// the submit-time validation surface of the /v1/envs create endpoint.
// (Park specs are validated separately via ValidateParkSpec, which the HTTP
// layer already calls.)
func (cfg EnvConfig) Validate() error {
	_, err := cfg.withDefaults()
	return err
}

// NewEnv resolves the park spec (at the service's scale and seed, exactly
// as Simulate does) and builds a live stepped environment: the bootstrap
// history is simulated and the episode is reset, ready for the first Step.
func (s *Service) NewEnv(cfg EnvConfig, opts ...Option) (*env.Env, error) {
	st := s.settingsFor(opts)
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	parkCfg, simCfg, err := resolveConfigs(cfg.Park, st.scale, st.seed)
	if err != nil {
		return nil, err
	}
	// Same seed convention as Simulate: the caller's root seed drives the
	// loop, so an Env episode replays a Simulate policy log exactly.
	simCfg.Seed = st.seed
	park, err := geo.GeneratePark(parkCfg)
	if err != nil {
		return nil, fmt.Errorf("paws: generate park: %w", err)
	}
	return env.New(env.Config{
		Park:            park,
		Sim:             simCfg,
		Attacker:        cfg.Attacker,
		Seasons:         cfg.Seasons,
		SeasonMonths:    cfg.SeasonMonths,
		BootstrapMonths: cfg.BootstrapMonths,
		BudgetKM:        cfg.BudgetKM,
	})
}

// httpEnvCloseTimeout bounds the best-effort session delete SimulateRemote
// issues after each policy finishes (or fails), so cleanup cannot hang a
// canceled run.
const httpEnvCloseTimeout = 5 * time.Second

// SimulateRemote is Simulate with the season loop running remotely: every
// policy plans locally (including the full paws retrain-and-plan pipeline)
// but executes its seasons against a /v1/envs session on baseURL — pawsd
// directly or pawsgate in front of a fleet. The park is resolved locally
// from the same spec, scale and seed the server uses, so the report is
// byte-identical to the local Simulate for the same configuration and any
// worker count. hc nil selects http.DefaultClient.
func (s *Service) SimulateRemote(ctx context.Context, baseURL string, hc *http.Client, cfg SimConfig, opts ...Option) (*sim.Report, error) {
	st := s.settingsFor(opts)
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	parkCfg, simCfg, err := resolveConfigs(cfg.Park, st.scale, st.seed)
	if err != nil {
		return nil, err
	}
	simCfg.Seed = st.seed
	park, err := geo.GeneratePark(parkCfg)
	if err != nil {
		return nil, fmt.Errorf("paws: generate park: %w", err)
	}
	policies := make([]sim.Policy, len(cfg.Policies))
	for i, name := range cfg.Policies {
		if name == "paws" {
			policies[i] = &pawsPolicy{st: st, beta: cfg.Beta}
			continue
		}
		p, err := sim.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("paws: %w (plus \"paws\")", err)
		}
		policies[i] = p
	}
	// The report's header fields come from the env view of the config —
	// the same derivation the server applies per session.
	ecfg, err := (env.Config{
		Park:            park,
		Sim:             simCfg,
		Attacker:        cfg.Attacker,
		Seasons:         cfg.Seasons,
		SeasonMonths:    cfg.SeasonMonths,
		BootstrapMonths: cfg.BootstrapMonths,
		BudgetKM:        cfg.BudgetKM,
	}).WithDefaults()
	if err != nil {
		return nil, err
	}
	var progress func(policy string, season, seasons int)
	if pf := st.progress; pf != nil {
		progress = func(policy string, season, seasons int) {
			pf(ProgressEvent{Stage: "season", Item: policy, Current: season, Total: seasons})
		}
	}
	req := env.CreateRequest{
		Park:            cfg.Park,
		Seed:            st.seed,
		Seasons:         cfg.Seasons,
		SeasonMonths:    cfg.SeasonMonths,
		BootstrapMonths: cfg.BootstrapMonths,
		BudgetKM:        cfg.BudgetKM,
		Attacker:        cfg.Attacker.Kind,
	}
	results, err := par.MapErrCtx(ctx, st.workers, len(policies), func(i int) (sim.PolicyResult, error) {
		c := env.NewClient(baseURL, hc, park, req)
		defer func() {
			// Best-effort cleanup even when ctx is already done.
			cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), httpEnvCloseTimeout)
			defer cancel()
			_ = c.Close(cctx)
		}()
		return env.Drive(ctx, c, policies[i], env.DriveConfig{
			Seed:     ecfg.Sim.Seed,
			Seasons:  ecfg.Seasons,
			Progress: progress,
		})
	})
	if err != nil {
		return nil, err
	}
	return &sim.Report{
		Park:         ecfg.Park.Name,
		Seed:         ecfg.Sim.Seed,
		Attacker:     ecfg.Attacker.Kind,
		Seasons:      ecfg.Seasons,
		SeasonMonths: ecfg.SeasonMonths,
		BudgetKM:     ecfg.BudgetKM,
		Policies:     results,
	}, nil
}
