package paws

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"paws/internal/campaign"
)

// acceptanceCampaign is the PR acceptance grid: 2 parks × 3 policies ×
// 3 replicate seeds (one season count), the smallest campaign the paper's
// Table III-style conclusion can be drawn from.
func acceptanceCampaign() CampaignConfig {
	return CampaignConfig{
		Parks:        []string{"rand:16", "rand:8"},
		Policies:     []string{"paws", "uniform", "historical"},
		Seeds:        []int64{1, 2, 3},
		SeasonCounts: []int{1},
	}
}

// TestCampaignAcceptance is the tentpole acceptance test. One campaign over
// 2 parks × 3 policies × 3 seeds must satisfy, in a single run:
//
//	(a) the aggregated report is byte-identical for workers 1, 4 and 8;
//	(b) every paired per-seed delta equals the difference of the
//	    corresponding single-policy Simulate runs under the same CRN seed;
//	(c) the paws policy's mean detections beat uniform with a positive 95%
//	    bootstrap CI lower bound on at least one park.
func TestCampaignAcceptance(t *testing.T) {
	ctx := context.Background()
	cfg := acceptanceCampaign()

	// (a) byte-identical across worker counts.
	var rep *campaign.Report
	var want []byte
	for _, workers := range []int{1, 4, 8} {
		svc := NewService(WithScale(ScaleSmall), WithWorkers(workers))
		r, err := svc.Campaign(ctx, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			rep, want = r, got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("campaign report differs between workers=1 and workers=%d", workers)
		}
	}
	if len(rep.Cells) != 6 || len(rep.Summaries) != 2 {
		t.Fatalf("grid shape: %d cells, %d summaries", len(rep.Cells), len(rep.Summaries))
	}

	// (b) CRN pairing: the campaign's per-seed paws−uniform deltas must
	// equal the difference of two single-policy Simulate runs at the same
	// seed — the campaign adds aggregation, never different randomness.
	svc := NewService(WithScale(ScaleSmall), WithWorkers(0))
	park := rep.Summaries[0]
	if park.Park != "rand:16" {
		t.Fatalf("first summary is %q", park.Park)
	}
	var delta *campaign.Delta
	for i := range park.Deltas {
		if park.Deltas[i].Policy == "paws" {
			delta = &park.Deltas[i]
		}
	}
	if delta == nil || delta.Baseline != "uniform" {
		t.Fatalf("missing paws-vs-uniform delta: %+v", park.Deltas)
	}
	for i, seed := range cfg.Seeds {
		var single [2]int
		for j, policy := range []string{"paws", "uniform"} {
			r, err := svc.Simulate(ctx, SimConfig{
				Park:     "rand:16",
				Seasons:  cfg.SeasonCounts[0],
				Policies: []string{policy},
			}, WithSeed(seed))
			if err != nil {
				t.Fatalf("single %s seed %d: %v", policy, seed, err)
			}
			single[j] = r.Policies[0].Detections
		}
		if got, want := delta.PerCell[i], float64(single[0]-single[1]); got != want {
			t.Errorf("seed %d: campaign paired delta %v, single-run difference %v", seed, got, want)
		}
	}

	// (c) paws beats uniform with a positive bootstrap CI lower bound on at
	// least one park.
	beats := 0
	for _, s := range rep.Summaries {
		for _, d := range s.Deltas {
			if d.Policy != "paws" {
				continue
			}
			t.Logf("%s: paws−uniform mean %+.2f, 95%% CI [%+.2f, %+.2f], wins %d/%d",
				s.Park, d.Mean, d.CILow, d.CIHigh, d.Wins, len(d.PerCell))
			if d.Mean > 0 && d.CILow > 0 {
				beats++
			}
		}
	}
	if beats == 0 {
		t.Fatal("paws does not beat uniform with a positive CI lower bound on any park")
	}
}

// TestCampaignDefaultsAndValidation: zero-value defaults resolve, and
// malformed configs are rejected before any simulation runs.
func TestCampaignDefaultsAndValidation(t *testing.T) {
	svc := NewService(WithScale(ScaleSmall))
	ctx := context.Background()
	cases := []struct {
		name   string
		mutate func(*CampaignConfig)
	}{
		{"unknown park", func(c *CampaignConfig) { c.Parks = []string{"ATLANTIS"} }},
		{"bad range", func(c *CampaignConfig) { c.Parks = []string{"rand:9-2"} }},
		{"unknown policy", func(c *CampaignConfig) { c.Policies = []string{"uniform", "skynet"} }},
		{"zero season count", func(c *CampaignConfig) { c.SeasonCounts = []int{0} }},
		{"negative season months", func(c *CampaignConfig) { c.SeasonMonths = -1 }},
		{"negative budget", func(c *CampaignConfig) { c.BudgetKM = -10 }},
		{"beta out of range", func(c *CampaignConfig) { c.Beta = 2 }},
		{"baseline not in policies", func(c *CampaignConfig) { c.Baseline = "historical" }},
		{"negative resamples", func(c *CampaignConfig) { c.Resamples = -5 }},
	}
	for _, tc := range cases {
		cfg := CampaignConfig{
			Parks:        []string{"rand:16"},
			Policies:     []string{"uniform", "random"},
			Seeds:        []int64{1},
			SeasonCounts: []int{1},
		}
		tc.mutate(&cfg)
		if _, err := svc.Campaign(ctx, cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The all-defaults config must validate (don't run it here — the
	// default grid is MFNP × 3 seeds × 4 seasons, the acceptance test
	// already covers a real run).
	def, err := CampaignConfig{}.withDefaults()
	if err != nil {
		t.Fatalf("zero-value config rejected: %v", err)
	}
	if len(def.Parks) == 0 || len(def.Policies) == 0 || len(def.Seeds) == 0 || len(def.SeasonCounts) == 0 {
		t.Fatalf("defaults not filled: %+v", def)
	}
}

// TestCampaignProgressEvents: one "cell" progress event per completed cell
// flows through WithProgress, and no inner per-season events leak (cells
// are the campaign's unit of progress).
func TestCampaignProgressEvents(t *testing.T) {
	svc := NewService(WithScale(ScaleSmall), WithWorkers(2))
	var mu sync.Mutex
	var events []ProgressEvent
	var total int
	done := map[string]bool{}
	_, err := svc.Campaign(context.Background(), CampaignConfig{
		Parks:        []string{"rand:16"},
		Policies:     []string{"uniform", "historical", "random"},
		Seeds:        []int64{1, 2},
		SeasonCounts: []int{1},
	}, WithProgress(func(e ProgressEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Stage != "cell" {
			t.Fatalf("unexpected stage %q (inner simulation events must be suppressed)", e.Stage)
		}
		done[e.Item] = true
		total = e.Total
	}
	if len(events) != 2 || total != 2 || len(done) != 2 {
		t.Fatalf("events %v", events)
	}
}

// TestCampaignLearnedPolicies: the learned sequential policies run through
// the campaign grid like any other name, and their paired deltas obey the
// same CRN contract as paws — each per-seed delta equals the difference of
// two single-policy Simulate runs at that seed. This is the acceptance grid
// of the environment subsystem's policy adapters: thompson and softmax plan
// from the live observation record inside the closed loop, yet stay exactly
// reproducible under the campaign's common-random-numbers pairing.
func TestCampaignLearnedPolicies(t *testing.T) {
	ctx := context.Background()
	svc := NewService(WithScale(ScaleSmall), WithWorkers(0))
	cfg := CampaignConfig{
		Parks:        []string{"rand:16"},
		Policies:     []string{"paws", "uniform", "thompson", "softmax"},
		Seeds:        []int64{1, 2},
		SeasonCounts: []int{1},
	}
	rep, err := svc.Campaign(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 || len(rep.Summaries) != 1 {
		t.Fatalf("grid shape: %d cells, %d summaries", len(rep.Cells), len(rep.Summaries))
	}
	park := rep.Summaries[0]
	// One paired delta per non-baseline policy: paws, thompson, softmax.
	if len(park.Deltas) != 3 {
		t.Fatalf("deltas: %+v, want paws/thompson/softmax vs uniform", park.Deltas)
	}
	for _, learned := range []string{"thompson", "softmax"} {
		var delta *campaign.Delta
		for i := range park.Deltas {
			if park.Deltas[i].Policy == learned {
				delta = &park.Deltas[i]
			}
		}
		if delta == nil || delta.Baseline != "uniform" {
			t.Fatalf("missing %s-vs-uniform delta: %+v", learned, park.Deltas)
		}
		t.Logf("%s−uniform: mean %+.2f, 95%% CI [%+.2f, %+.2f], wins %d/%d",
			learned, delta.Mean, delta.CILow, delta.CIHigh, delta.Wins, len(delta.PerCell))
		for i, seed := range cfg.Seeds {
			var single [2]int
			for j, policy := range []string{learned, "uniform"} {
				r, err := svc.Simulate(ctx, SimConfig{
					Park:     "rand:16",
					Seasons:  cfg.SeasonCounts[0],
					Policies: []string{policy},
				}, WithSeed(seed))
				if err != nil {
					t.Fatalf("single %s seed %d: %v", policy, seed, err)
				}
				single[j] = r.Policies[0].Detections
			}
			if got, want := delta.PerCell[i], float64(single[0]-single[1]); got != want {
				t.Errorf("%s seed %d: campaign paired delta %v, single-run difference %v", learned, seed, got, want)
			}
		}
	}
}
