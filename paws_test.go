package paws

import (
	"math"
	"testing"

	"paws/internal/dataset"
	"paws/internal/geo"
	"paws/internal/poach"
)

// smallScenario builds a reduced park+history fast enough for unit tests.
func smallScenario(t testing.TB, seed int64, seasonal bool) *Scenario {
	t.Helper()
	parkCfg := geo.ParkConfig{
		Name: "SMALL", Seed: seed, W: 26, H: 26, TargetCells: 480,
		Shape: geo.ShapeRound, NumRivers: 2, NumRoads: 2, NumVillages: 3,
		NumPosts: 3, ExtraFeatures: 2, Seasonal: seasonal,
	}
	simCfg := poach.SimConfig{
		Seed:   seed + 1,
		Months: 60, // 5 years: tests use the final year
		Patrol: poach.PatrolConfig{
			PatrolsPerPostMonth: 4, LengthKM: 11, RecordEvery: 1,
			RoadBias: 0.3, AttractBias: 0.5,
		},
		TargetPositiveRate: 0.10,
		Deterrence:         0.3,
		DetectLambda:       0.5,
		NonPoachingRate:    0.05,
	}
	if seasonal {
		simCfg.SeasonalAmp = 0.6
		simCfg.Patrol.WetSeasonRiverBlock = true
	}
	sc, err := NewCustomScenario(parkCfg, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func quickTrainOpts(kind ModelKind, seed int64) TrainOptions {
	return TrainOptions{
		Kind:       kind,
		Thresholds: 4,
		Members:    4,
		GPMaxTrain: 60,
		TreeDepth:  6,
		Seed:       seed,
	}
}

func TestNewScenarioPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("full presets are slow")
	}
	sc, err := NewScenario("QENP", 3)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Park.Grid.NumCells() != 2522 {
		t.Fatalf("QENP cells = %d", sc.Park.Grid.NumCells())
	}
	if sc.DryData != nil {
		t.Fatal("QENP should have no dry dataset")
	}
	if _, err := NewScenario("NOPE", 1); err == nil {
		t.Fatal("expected unknown-preset error")
	}
}

func TestScenarioSeasonalHasDryData(t *testing.T) {
	sc := smallScenario(t, 11, true)
	if sc.DryData == nil {
		t.Fatal("seasonal scenario must build a dry dataset")
	}
	if len(sc.DryData.Steps) >= len(sc.Data.Steps)*2 {
		t.Fatal("dry dataset should have fewer or similar steps")
	}
}

func TestTrainAllKindsAndAUC(t *testing.T) {
	sc := smallScenario(t, 13, false)
	split, err := sc.Data.SplitByTestYear(dataset.BaseYear+4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []ModelKind{SVB, DTB, GPB, SVBiW, DTBiW, GPBiW} {
		m, err := Train(split.Train, quickTrainOpts(kind, 17))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		auc := m.AUC(split.Test)
		if auc < 0.3 || auc > 1 {
			t.Fatalf("%v AUC = %v", kind, auc)
		}
		if kind.IsIWare() && m.IWare() == nil {
			t.Fatalf("%v should expose the iWare ensemble", kind)
		}
		if !kind.IsIWare() && m.Ensemble() == nil {
			t.Fatalf("%v should expose the bagging ensemble", kind)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, TrainOptions{Kind: DTB}); err == nil {
		t.Fatal("expected empty-training error")
	}
}

func TestModelKindStrings(t *testing.T) {
	names := map[ModelKind]string{
		SVB: "SVB", DTB: "DTB", GPB: "GPB",
		SVBiW: "SVB-iW", DTBiW: "DTB-iW", GPBiW: "GPB-iW",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d → %q want %q", k, k.String(), want)
		}
	}
	if ModelKind(42).String() == "" {
		t.Fatal("unknown kind should still print")
	}
	if SVB.IsIWare() || !GPBiW.IsIWare() {
		t.Fatal("IsIWare wrong")
	}
}

func TestPlannerModel(t *testing.T) {
	sc := smallScenario(t, 19, false)
	split, err := sc.Data.SplitByTestYear(dataset.BaseYear+4, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(split.Train, quickTrainOpts(GPBiW, 23))
	if err != nil {
		t.Fatal(err)
	}
	testFrom, _ := sc.Data.StepsForYear(dataset.BaseYear + 4)
	pm, err := NewPlannerModel(m, sc.Data, testFrom-1)
	if err != nil {
		t.Fatal(err)
	}
	n := sc.Park.Grid.NumCells()
	risk := pm.RiskMap(1)
	unc := pm.UncertaintyMap(1)
	if len(risk) != n || len(unc) != n {
		t.Fatal("map sizes wrong")
	}
	for cell := 0; cell < n; cell += 37 {
		if risk[cell] < 0 || risk[cell] > 1 {
			t.Fatalf("risk %v", risk[cell])
		}
		if unc[cell] < 0 || unc[cell] >= 1 {
			t.Fatalf("uncertainty %v", unc[cell])
		}
		// Cache consistency.
		if pm.Detect(cell, 1) != risk[cell] {
			t.Fatal("cache inconsistency")
		}
	}
	if pm.SquashScale() <= 0 {
		t.Fatal("squash scale must be positive")
	}
	// Errors.
	if _, err := NewPlannerModel(nil, sc.Data, 0); err == nil {
		t.Fatal("expected nil-model error")
	}
	if _, err := NewPlannerModel(m, sc.Data, -1); err == nil {
		t.Fatal("expected step-range error")
	}
}

func TestNominalEffort(t *testing.T) {
	sc := smallScenario(t, 29, false)
	e := NominalEffort(sc.Data)
	if e <= 0 || math.IsNaN(e) {
		t.Fatalf("nominal effort %v", e)
	}
	empty := &dataset.Dataset{Park: sc.Park, Cfg: dataset.StandardConfig()}
	if NominalEffort(empty) != 1 {
		t.Fatal("empty dataset should default to 1")
	}
}

func TestRunFig4(t *testing.T) {
	sc := smallScenario(t, 31, false)
	s, err := RunFig4(sc, "SMALL", dataset.BaseYear+4, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.TrainRates) != len(s.Percentiles) || len(s.TestRates) != len(s.Percentiles) {
		t.Fatal("series lengths wrong")
	}
	// Positive rate must trend upward with effort percentile (Fig 4 shape).
	// The far tail is noisy (few points above the 90th percentile), so
	// compare the median band against the base rate.
	if s.TrainRates[5] <= s.TrainRates[0] {
		t.Fatalf("train positive rate should rise with percentile: %v", s.TrainRates)
	}
	if _, err := RunFig4(sc, "SMALL", dataset.BaseYear+4, 3, true); err == nil {
		t.Fatal("expected dry-data error on non-seasonal scenario")
	}
}

func TestRunTable2SmallSweep(t *testing.T) {
	sc := smallScenario(t, 37, false)
	rows, err := RunTable2ForScenario(sc, "SMALL", Table2Options{
		Kinds:      []ModelKind{DTB, DTBiW},
		TestYears:  []int{dataset.BaseYear + 4},
		Members:    4,
		Thresholds: 4,
		Seed:       41,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	SortTable2Rows(rows)
	if rows[0].Kind != DTB || rows[1].Kind != DTBiW {
		t.Fatal("sort order wrong")
	}
	sum := SummarizeTable2(rows)
	if sum.MeanAUCWith == 0 || sum.MeanAUCWithout == 0 {
		t.Fatal("summary incomplete")
	}
}

func TestRunFig7Correlations(t *testing.T) {
	sc := smallScenario(t, 43, false)
	res, err := RunFig7(sc, dataset.BaseYear+4, 3, quickTrainOpts(GPB, 47))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GPPredictions) == 0 || len(res.DTPredictions) == 0 {
		t.Fatal("no test predictions")
	}
	// Fig 7 shape: bagged-tree variance tracks p(1−p), a near-deterministic
	// function of the prediction, so its correlation is strong and positive;
	// GP variance is driven by data density, so its correlation is weaker.
	if res.DTCorrelation < 0.3 {
		t.Fatalf("DT prediction-variance correlation %v should be strongly positive", res.DTCorrelation)
	}
	if math.Abs(res.GPCorrelation) > 0.95 {
		t.Fatalf("GP correlation %v should not be near-perfect", res.GPCorrelation)
	}
}

func TestPlanStudyEndToEnd(t *testing.T) {
	sc := smallScenario(t, 53, false)
	ps, err := NewPlanStudy(sc, PlanStudyOptions{
		Posts:         2,
		Radius:        2,
		MaxCells:      16,
		T:             4,
		K:             2,
		Segments:      4,
		Betas:         []float64{1.0},
		SegmentCounts: []int{3, 6},
		TestYear:      dataset.BaseYear + 4,
		Train:         quickTrainOpts(GPBiW, 59),
	})
	if err != nil {
		t.Fatal(err)
	}
	beta, err := ps.RunFig8Beta()
	if err != nil {
		t.Fatal(err)
	}
	if len(beta) != 1 || beta[0].Avg < 0.95 {
		t.Fatalf("beta sweep: %+v", beta)
	}
	segs, err := ps.RunFig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].Runtime <= 0 {
		t.Fatalf("segment sweep: %+v", segs)
	}
	gain, err := ps.RunDetectionGain(24, 61)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny test regions have too little statistical power to assert the
	// paper's 30% gain here (the bench does); just check well-formedness.
	if gain.RobustDetections < 0 || gain.BlindDetections < 0 || gain.Factor < 0 {
		t.Fatalf("detection gain: %+v", gain)
	}
}

func TestRunTable3SmallTrial(t *testing.T) {
	sc := smallScenario(t, 67, false)
	trials, err := RunTable3ForScenario(sc, "SMALL", 2, []int{2, 2}, Table3Options{
		PerGroup: 4,
		Train:    quickTrainOpts(DTBiW, 71),
		Seed:     73,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 2 {
		t.Fatalf("trials = %d", len(trials))
	}
	for _, tr := range trials {
		if len(tr.Result.Groups) != 3 {
			t.Fatal("missing groups")
		}
		for _, g := range tr.Result.Groups {
			if g.CellsVisited == 0 {
				t.Fatalf("%s: group %v never patrolled", tr.Name, g.Group)
			}
		}
	}
}

func TestRasterASCII(t *testing.T) {
	sc := smallScenario(t, 79, false)
	v := make([]float64, sc.Park.Grid.NumCells())
	s := RasterASCII(sc.Park, v)
	if len(s) == 0 {
		t.Fatal("empty ASCII output")
	}
}
