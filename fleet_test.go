package paws

import (
	"context"
	"testing"

	"paws/internal/store"
)

// fleetTrainOpts are quick training knobs for the fleet tests.
func fleetTrainOpts() []Option {
	return []Option{
		WithKind(DTBiW),
		WithThresholds(4),
		WithEnsembleSize(4),
		WithTreeDepth(6),
	}
}

// trainInto trains a quick model on a procedural park and registers it.
func trainInto(t *testing.T, svc *Service, name string, trainSeed int64) *ServedModel {
	t.Helper()
	ctx := context.Background()
	sc, err := svc.Scenario(ctx, "rand:16")
	if err != nil {
		t.Fatal(err)
	}
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := append(fleetTrainOpts(), WithSeed(trainSeed))
	m, err := svc.Train(ctx, split.Train, opts...)
	if err != nil {
		t.Fatal(err)
	}
	testFrom, _ := sc.Data.StepsForYear(year)
	sm, err := svc.AddModel(ctx, name, m, sc.Data, testFrom-1)
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

// TestFleetPublishSyncServeIdentical is the shared-store contract: replica
// A trains and publishes, replica B syncs from the store alone, and both
// replicas answer the same riskmap query with byte-identical floats.
func TestFleetPublishSyncServeIdentical(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	svcA := NewService(WithWorkers(2), WithSeed(7))
	svcA.AttachStore(st)
	smA := trainInto(t, svcA, "shared", 7)
	if src, hash, gen := smA.Provenance(); src != SourceMemory || hash != "" || gen != 0 {
		t.Fatalf("pre-publish provenance = (%q, %q, %d), want (memory, \"\", 0)", src, hash, gen)
	}
	entry, err := svcA.PublishModel("shared", StoreMeta{Park: "rand:16", Scale: "small", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if src, hash, gen := smA.Provenance(); src != SourceMemory || hash != entry.Hash || gen != entry.Generation {
		t.Fatalf("post-publish provenance = (%q, %q, %d), want (memory, %q, %d)", src, hash, gen, entry.Hash, entry.Generation)
	}

	stB, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svcB := NewService(WithWorkers(2), WithSeed(7))
	svcB.AttachStore(stB)
	syncer, err := NewStoreSyncer(svcB)
	if err != nil {
		t.Fatal(err)
	}
	n, err := syncer.SyncOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("first sync registered %d models, want 1", n)
	}
	smB, ok := svcB.Served("shared")
	if !ok {
		t.Fatal("synced model not registered")
	}
	if src, hash, gen := smB.Provenance(); src != SourceStore || hash != entry.Hash || gen != entry.Generation {
		t.Fatalf("synced provenance = (%q, %q, %d), want (store, %q, %d)", src, hash, gen, entry.Hash, entry.Generation)
	}

	// Any replica serves any model: identical queries, identical floats.
	riskA, uncA, err := svcA.RiskMaps(ctx, "shared", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	riskB, uncB, err := svcB.RiskMaps(ctx, "shared", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFloats(t, "risk A vs B", riskA, riskB)
	assertSameFloats(t, "uncertainty A vs B", uncA, uncB)

	// An unchanged index is a no-op poll.
	if n, err := syncer.SyncOnce(ctx); err != nil || n != 0 {
		t.Fatalf("idle sync = (%d, %v), want (0, nil)", n, err)
	}

	// A re-publish (new training seed → new artifact) bumps the generation
	// and the next poll picks it up; the publisher itself does not
	// re-register its own write.
	trainInto(t, svcA, "shared", 99)
	entry2, err := svcA.PublishModel("shared", StoreMeta{Park: "rand:16", Scale: "small", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if entry2.Generation != entry.Generation+1 {
		t.Fatalf("republish generation %d, want %d", entry2.Generation, entry.Generation+1)
	}
	if entry2.Hash == entry.Hash {
		t.Fatal("retrained model hashed identically to the original")
	}
	if n, err := syncer.SyncOnce(ctx); err != nil || n != 1 {
		t.Fatalf("post-republish sync = (%d, %v), want (1, nil)", n, err)
	}
	smB2, _ := svcB.Served("shared")
	if smB2.Generation() == smB.Generation() {
		t.Fatal("re-registration did not bump the service generation")
	}
	if _, hash, gen := smB2.Provenance(); hash != entry2.Hash || gen != entry2.Generation {
		t.Fatalf("resynced provenance (%q, %d), want (%q, %d)", hash, gen, entry2.Hash, entry2.Generation)
	}
	riskA2, _, err := svcA.RiskMaps(ctx, "shared", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	riskB2, _, err := svcB.RiskMaps(ctx, "shared", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFloats(t, "risk A vs B after republish", riskA2, riskB2)

	// Syncing a service that itself published sees nothing to do.
	syncerA, err := NewStoreSyncer(svcA)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := syncerA.SyncOnce(ctx); err != nil || n != 0 {
		t.Fatalf("publisher self-sync = (%d, %v), want (0, nil)", n, err)
	}
}

func TestPublishWithoutStoreFails(t *testing.T) {
	svc := NewService(WithSeed(7))
	if _, err := svc.PublishModel("anything", StoreMeta{}); err == nil {
		t.Fatal("publish without an attached store succeeded")
	}
	if _, err := NewStoreSyncer(svc); err == nil {
		t.Fatal("syncer without an attached store succeeded")
	}
}

func TestSaveBytesMatchesSaveAndHashes(t *testing.T) {
	svc := NewService(WithWorkers(2), WithSeed(7))
	sm := trainInto(t, svc, "m", 7)
	b1, err := sm.Model.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := sm.Model.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	if store.HashBytes(b1) != store.HashBytes(b2) {
		t.Fatal("two encodings of one model hash differently")
	}
	loaded, err := LoadModelBytes(b1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind != sm.Model.Kind {
		t.Fatalf("loaded kind %v, want %v", loaded.Kind, sm.Model.Kind)
	}
}
