// Package paws is a from-scratch Go reproduction of the Protection
// Assistant for Wildlife Security (PAWS) pipeline described in "Stay Ahead
// of Poachers: Illegal Wildlife Poaching Prediction and Patrol Planning
// Under Uncertainty with Field Test Evaluations" (ICDE 2020) — grown into a
// servable system.
//
// # The Service façade
//
// The primary API is the long-lived, context-aware Service: construct one
// with deployment-wide defaults, then drive every pipeline stage through
// it. Each method takes a context.Context that is observed mid-computation
// (between weak-learner fits, batch-prediction chunks and planner solves),
// so cancellation and deadlines work against real training and serving
// load:
//
//	svc := paws.NewService(paws.WithWorkers(0), paws.WithSeed(7))
//	sc, _ := svc.Scenario(ctx, "MFNP", paws.WithScale(paws.ScaleSmall))
//	model, _ := svc.Train(ctx, split.Train, paws.WithKind(paws.GPBiW))
//
// Configuration is functional options (WithWorkers, WithKind,
// WithEnsembleSize, WithThresholds, WithCVFolds, …) shared by training,
// planning and the experiment runners; per-call options override the
// Service defaults. The legacy struct-based free functions (Train,
// NewScenario, NewPlannerModel, RunTable*/RunFig*) remain as thin wrappers
// and now have *Ctx variants.
//
// # Model persistence and serving
//
// A trained Model persists with Model.Save/Model.SaveFile in a versioned
// binary format and reloads with LoadModel/LoadModelFile; a loaded model's
// predictions are byte-identical to the original's for all six ModelKinds.
// Service.AddModel registers a model (fresh or loaded) under a name with a
// frozen serving context; Service.Predict/PredictCells/RiskMaps/Plan then
// answer queries against it, and internal/serve + cmd/pawsd expose those
// queries over JSON/HTTP (/v1/predict, /v1/riskmap, /v1/plan).
//
// # Closed-loop simulation
//
// Service.Simulate runs the plan → patrol → poacher-reaction → retrain loop
// of internal/sim: patrol policies (the full PAWS pipeline vs
// uniform/historical/random baselines) compared head-to-head over multiple
// seasons against a static or adaptive attacker (poach.Attacker), on preset
// or procedural ("rand:<seed>") parks. cmd/pawssim is the CLI and
// /v1/simulate the HTTP surface.
//
// # Pipeline substrates
//
// The package ties together the substrates in internal/…:
//
//   - Scenario: a synthetic park (geo), its simulated SMART-style patrol
//     history (poach), and the processed dataset (dataset).
//   - Model: the six predictive variants of Table II — bagging ensembles of
//     SVMs, decision trees, or Gaussian processes, each with or without the
//     iWare-E wrapper — trained with one call.
//   - PlannerModel: the adapter exposing a trained model's effort-conditioned
//     detection probability g_v(c) and squashed uncertainty ν_v(c) to the
//     patrol planner (plan, game).
//   - Field tests (field) driven by a trained model's risk map.
//
// # Determinism
//
// Every entry point takes an explicit seed and is deterministic — including
// under parallel execution and concurrent serving: WithWorkers (and the
// Workers fields on the legacy option structs) bound a worker pool
// (internal/par) whose output is byte-identical for any worker count.
// Workers = 1 forces sequential execution; 0 or negative sizes the pool to
// runtime.GOMAXPROCS(0), so -cpu / GOMAXPROCS scale the whole pipeline.
package paws

import (
	"context"
	"errors"
	"fmt"
	"math"

	"paws/internal/dataset"
	"paws/internal/geo"
	"paws/internal/iware"
	"paws/internal/ml"
	"paws/internal/ml/bagging"
	"paws/internal/ml/gp"
	"paws/internal/ml/svm"
	"paws/internal/ml/tree"
	"paws/internal/poach"
	"paws/internal/stats"
)

// Scenario bundles a park with its simulated history and processed datasets.
type Scenario struct {
	Park    *geo.Park
	History *poach.History
	// Data is the standard quarterly dataset.
	Data *dataset.Dataset
	// DryData is the dry-season dataset (nil for non-seasonal parks).
	DryData *dataset.Dataset
}

// NewScenario generates a park from a spec — a preset name ("MFNP", "QENP",
// "SWS") or a procedural "rand:<seed>" spec — with its simulated history and
// datasets.
func NewScenario(name string, seed int64) (*Scenario, error) {
	return sansCtx(func(ctx context.Context) (*Scenario, error) {
		return NewScenarioCtx(ctx, name, seed)
	})
}

// NewScenarioCtx is NewScenario under a context, observed between the
// generation stages (park, history, datasets).
func NewScenarioCtx(ctx context.Context, name string, seed int64) (*Scenario, error) {
	parkCfg, simCfg, err := specConfigs(name, seed)
	if err != nil {
		return nil, err
	}
	return NewCustomScenarioCtx(ctx, parkCfg, simCfg)
}

// NewCustomScenario generates a scenario from explicit configurations.
func NewCustomScenario(parkCfg geo.ParkConfig, simCfg poach.SimConfig) (*Scenario, error) {
	return sansCtx(func(ctx context.Context) (*Scenario, error) {
		return NewCustomScenarioCtx(ctx, parkCfg, simCfg)
	})
}

// NewCustomScenarioCtx is NewCustomScenario under a context, observed
// between the generation stages.
func NewCustomScenarioCtx(ctx context.Context, parkCfg geo.ParkConfig, simCfg poach.SimConfig) (*Scenario, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	park, err := geo.GeneratePark(parkCfg)
	if err != nil {
		return nil, fmt.Errorf("paws: generate park: %w", err)
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	hist, err := poach.Simulate(park, simCfg)
	if err != nil {
		return nil, fmt.Errorf("paws: simulate history: %w", err)
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	data, err := dataset.Build(hist, dataset.StandardConfig())
	if err != nil {
		return nil, fmt.Errorf("paws: build dataset: %w", err)
	}
	s := &Scenario{Park: park, History: hist, Data: data}
	if parkCfg.Seasonal {
		dry, err := dataset.Build(hist, dataset.DrySeasonConfig())
		if err != nil {
			return nil, fmt.Errorf("paws: build dry dataset: %w", err)
		}
		s.DryData = dry
	}
	return s, nil
}

// ctxErr reports a context's error, tolerating nil contexts (which every
// Ctx entry point treats as context.Background()).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// sansCtx adapts a *Ctx entry point to its legacy context-free form: every
// non-Ctx wrapper in this package is one call through this helper — either a
// method value or a closure binding the arguments — instead of a hand-rolled
// context.Background() body copied into each wrapper.
func sansCtx[T any](fn func(context.Context) (T, error)) (T, error) {
	return fn(context.Background())
}

// ModelKind selects one of the six Table II predictive models.
type ModelKind int

const (
	// SVB is a bagging ensemble of linear SVMs.
	SVB ModelKind = iota
	// DTB is a bagging ensemble of decision trees (a random forest).
	DTB
	// GPB is a bagging ensemble of Gaussian-process classifiers.
	GPB
	// SVBiW is SVB wrapped in iWare-E.
	SVBiW
	// DTBiW is DTB wrapped in iWare-E.
	DTBiW
	// GPBiW is GPB wrapped in iWare-E — the paper's preferred model.
	GPBiW
)

func (k ModelKind) String() string {
	switch k {
	case SVB:
		return "SVB"
	case DTB:
		return "DTB"
	case GPB:
		return "GPB"
	case SVBiW:
		return "SVB-iW"
	case DTBiW:
		return "DTB-iW"
	case GPBiW:
		return "GPB-iW"
	}
	return fmt.Sprintf("ModelKind(%d)", int(k))
}

// IsIWare reports whether the kind uses the iWare-E wrapper.
func (k ModelKind) IsIWare() bool { return k == SVBiW || k == DTBiW || k == GPBiW }

// ParseModelKind converts a Table II model name ("SVB", "DTB", "GPB",
// "SVB-iW", "DTB-iW", "GPB-iW") to its ModelKind.
func ParseModelKind(s string) (ModelKind, error) {
	for _, k := range []ModelKind{SVB, DTB, GPB, SVBiW, DTBiW, GPBiW} {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("paws: unknown model kind %q (want SVB, DTB, GPB, SVB-iW, DTB-iW or GPB-iW)", s)
}

// TrainOptions tunes model training. Zero values select paper-flavoured
// defaults scaled for interactive use.
type TrainOptions struct {
	Kind ModelKind
	// Thresholds is the iWare-E threshold-ladder size (paper: 20 for
	// MFNP/QENP, 10 for SWS). Default 10.
	Thresholds int
	// MaxThresholdPercentile is the top percentile for the ladder
	// (default 80).
	MaxThresholdPercentile float64
	// Members is the bagging ensemble size (default 10).
	Members int
	// Balanced enables balanced bagging — undersampling negatives — the
	// paper's remedy for SWS-grade imbalance.
	Balanced bool
	// CVFolds enables iWare-E weight optimization (0 = uniform weights).
	CVFolds int
	// GPMaxTrain caps each GP's training subsample (default 150).
	GPMaxTrain int
	// TreeDepth caps decision-tree depth (default 10).
	TreeDepth int
	Seed      int64
	// Workers bounds the goroutines used to train ensemble members /
	// iWare-E ladder slices concurrently and to fan batch predictions out
	// (par.Workers semantics: 1 forces sequential execution, 0 or negative
	// uses one worker per CPU, i.e. GOMAXPROCS). Training and prediction
	// results are byte-identical for every worker count.
	Workers int
	// progress observes per-weak-learner fit completion (WithProgress).
	// Unexported deliberately: the field is set through the Service options
	// and must stay out of the gob-encoded model envelope (persist.go).
	progress ProgressFunc
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Thresholds <= 0 {
		o.Thresholds = 10
	}
	if o.MaxThresholdPercentile <= 0 {
		o.MaxThresholdPercentile = 80
	}
	if o.Members <= 0 {
		o.Members = 10
	}
	if o.GPMaxTrain <= 0 {
		o.GPMaxTrain = 150
	}
	if o.TreeDepth <= 0 {
		o.TreeDepth = 10
	}
	return o
}

// Model is a trained predictive model, either a plain bagging ensemble or an
// iWare-E ensemble of them.
type Model struct {
	Kind ModelKind
	opts TrainOptions

	// numFeatures is the feature-vector width the model was trained on
	// (0 in models from builds predating persistence).
	numFeatures int

	plain *bagging.Ensemble
	iw    *iware.Model
}

// NumFeatures returns the feature-vector width the model was trained on.
func (m *Model) NumFeatures() int { return m.numFeatures }

// weakLearnerFactory builds the base bagging ensemble for the model family.
func weakLearnerFactory(kind ModelKind, o TrainOptions, numFeatures int) ml.Factory {
	var base ml.Factory
	switch kind {
	case SVB, SVBiW:
		base = func(seed int64) ml.Classifier {
			return svm.New(svm.Config{Epochs: 12, Seed: seed, ClassWeighted: true})
		}
	case DTB, DTBiW:
		mf := int(math.Sqrt(float64(numFeatures)) + 0.5)
		base = func(seed int64) ml.Classifier {
			return tree.New(tree.Config{MaxDepth: o.TreeDepth, MinLeaf: 2, MaxFeatures: mf, Seed: seed})
		}
	case GPB, GPBiW:
		base = func(seed int64) ml.Classifier {
			return gp.New(gp.Config{MaxTrain: o.GPMaxTrain, Seed: seed})
		}
	}
	return func(seed int64) ml.Classifier {
		return bagging.New(base, bagging.Config{
			Members:  o.Members,
			Balanced: o.Balanced,
			Seed:     seed,
			Workers:  o.Workers,
		})
	}
}

// Train fits the selected model on training points.
func Train(train []dataset.Point, opts TrainOptions) (*Model, error) {
	return sansCtx(func(ctx context.Context) (*Model, error) {
		return TrainCtx(ctx, train, opts)
	})
}

// TrainCtx is Train under a context: cancellation and deadlines are
// observed between weak-learner fits (ensemble members, iWare-E ladder
// slices and CV tasks) — fits already in flight drain, no new fit starts,
// and the context's error is returned.
func TrainCtx(ctx context.Context, train []dataset.Point, opts TrainOptions) (*Model, error) {
	if len(train) == 0 {
		return nil, errors.New("paws: no training points")
	}
	o := opts.withDefaults()
	X := make([][]float64, len(train))
	y := make([]int, len(train))
	eff := make([]float64, len(train))
	for i, p := range train {
		X[i] = p.Features
		y[i] = p.Label
		eff[i] = p.Effort
	}
	// The stored options must not retain the progress closure: a Model can
	// live for the process lifetime in a Service registry, and the closure
	// would pin its train job's event log and request. Nothing on the
	// predict path reports progress.
	stored := o
	stored.progress = nil
	m := &Model{Kind: o.Kind, opts: stored, numFeatures: len(X[0])}
	factory := weakLearnerFactory(o.Kind, o, len(X[0]))
	if !o.Kind.IsIWare() {
		// Plain kinds: the weak learners are the bagging members.
		ens := factory(o.Seed).(*bagging.Ensemble)
		ens.OnMemberFit(progressCounter(o.progress, "train"))
		if err := ens.FitCtx(ctx, X, y); err != nil {
			return nil, trainErr(o.Kind, err)
		}
		m.plain = ens
		return m, nil
	}
	thresholds := dataset.EffortPercentileThresholds(train, o.Thresholds, o.MaxThresholdPercentile)
	iw, err := iware.FitCtx(ctx, X, y, eff, iware.Config{
		Thresholds:  thresholds,
		WeakLearner: factory,
		CVFolds:     o.CVFolds,
		Seed:        o.Seed,
		Workers:     o.Workers,
		// iWare-E kinds: the weak learners are the ladder slices.
		Progress: progressCounter(o.progress, "train"),
	})
	if err != nil {
		return nil, trainErr(o.Kind, err)
	}
	m.iw = iw
	return m, nil
}

// trainErr wraps a training failure, passing context errors through
// unwrapped so errors.Is(err, context.Canceled/DeadlineExceeded) works at
// every call depth.
func trainErr(kind ModelKind, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("paws: train %v: %w", kind, err)
}

// TrainWithThresholds trains an iWare-E model with an explicit threshold
// ladder instead of the percentile-derived one — used by the threshold
// ablation (the original iWare-E used fixed-kilometre grids).
func TrainWithThresholds(train []dataset.Point, thresholds []float64, opts TrainOptions) (*Model, error) {
	return sansCtx(func(ctx context.Context) (*Model, error) {
		return TrainWithThresholdsCtx(ctx, train, thresholds, opts)
	})
}

// TrainWithThresholdsCtx is TrainWithThresholds under a context, with
// TrainCtx's cancellation semantics.
func TrainWithThresholdsCtx(ctx context.Context, train []dataset.Point, thresholds []float64, opts TrainOptions) (*Model, error) {
	if len(train) == 0 {
		return nil, errors.New("paws: no training points")
	}
	o := opts.withDefaults()
	if !o.Kind.IsIWare() {
		return nil, errors.New("paws: explicit thresholds require an iWare-E kind")
	}
	X := make([][]float64, len(train))
	y := make([]int, len(train))
	eff := make([]float64, len(train))
	for i, p := range train {
		X[i] = p.Features
		y[i] = p.Label
		eff[i] = p.Effort
	}
	iw, err := iware.FitCtx(ctx, X, y, eff, iware.Config{
		Thresholds:  thresholds,
		WeakLearner: weakLearnerFactory(o.Kind, o, len(X[0])),
		CVFolds:     o.CVFolds,
		Seed:        o.Seed,
		Workers:     o.Workers,
		Progress:    progressCounter(o.progress, "train"),
	})
	if err != nil {
		return nil, trainErr(o.Kind, err)
	}
	stored := o
	stored.progress = nil // see TrainCtx: a Model must not pin its train job
	return &Model{Kind: o.Kind, opts: stored, numFeatures: len(X[0]), iw: iw}, nil
}

// PredictForEffort returns the detection probability for a feature vector at
// a planned patrol effort. Plain models ignore the effort.
func (m *Model) PredictForEffort(features []float64, effort float64) float64 {
	if m.iw != nil {
		return m.iw.PredictForEffort(features, effort)
	}
	return m.plain.PredictProba(features)
}

// PredictWithVariance additionally returns the model's uncertainty.
func (m *Model) PredictWithVariance(features []float64, effort float64) (p, variance float64) {
	if m.iw != nil {
		return m.iw.PredictWithVarianceForEffort(features, effort)
	}
	return m.plain.PredictWithVariance(features)
}

// PredictForEffortBatch scores many feature vectors at one planned effort
// through the model's batch fast path.
func (m *Model) PredictForEffortBatch(X [][]float64, effort float64) []float64 {
	if m.iw != nil {
		return m.iw.PredictForEffortBatch(X, effort)
	}
	return m.plain.PredictProbaBatch(X)
}

// PredictWithVarianceBatch scores many feature vectors with uncertainty at
// one planned effort through the model's batch fast path.
func (m *Model) PredictWithVarianceBatch(X [][]float64, effort float64) (p, variance []float64) {
	if m.iw != nil {
		return m.iw.PredictWithVarianceForEffortBatch(X, effort)
	}
	return m.plain.PredictWithVarianceBatch(X)
}

// PredictForEffortFlat is PredictForEffortBatch over a flat row-major
// matrix — the columnar fast path the planner and serving layers use.
func (m *Model) PredictForEffortFlat(X ml.Matrix, effort float64) []float64 {
	if m.iw != nil {
		return m.iw.PredictForEffortFlat(X, effort)
	}
	return m.plain.PredictProbaFlat(X)
}

// PredictWithVarianceFlat is PredictWithVarianceBatch over a flat row-major
// matrix.
func (m *Model) PredictWithVarianceFlat(X ml.Matrix, effort float64) (p, variance []float64) {
	if m.iw != nil {
		return m.iw.PredictWithVarianceForEffortFlat(X, effort)
	}
	return m.plain.PredictWithVarianceFlat(X)
}

// PredictPoints scores test points at their recorded efforts via the
// vectorized prediction paths.
func (m *Model) PredictPoints(pts []dataset.Point) []float64 {
	if m.iw != nil {
		X := make([][]float64, len(pts))
		eff := make([]float64, len(pts))
		for i, p := range pts {
			X[i] = p.Features
			eff[i] = p.Effort
		}
		return m.iw.PredictPoints(X, eff)
	}
	X := make([][]float64, len(pts))
	for i, p := range pts {
		X[i] = p.Features
	}
	return m.plain.PredictProbaBatch(X)
}

// AUC evaluates the model on test points.
func (m *Model) AUC(pts []dataset.Point) float64 {
	return stats.AUC(dataset.Labels(pts), m.PredictPoints(pts))
}

// IWare exposes the underlying iWare-E ensemble (nil for plain models).
func (m *Model) IWare() *iware.Model { return m.iw }

// Ensemble exposes the underlying bagging ensemble (nil for iWare models).
func (m *Model) Ensemble() *bagging.Ensemble { return m.plain }
