package paws

// Determinism contract of the parallel execution layer (internal/par): for
// every model kind, training and prediction with Workers=N must produce
// byte-identical floats to Workers=1, and the PlannerModel must be safe for
// concurrent lookups (run these under -race). See par's package doc for the
// two-part contract (index-owned writes + pre-derived seeds).

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// kindOutputs trains one model with the given worker count and returns its
// test-point predictions plus planner-model risk and uncertainty maps.
func kindOutputs(t *testing.T, sc *Scenario, kind ModelKind, workers int) (preds, risk, unc []float64) {
	t.Helper()
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := quickTrainOpts(kind, 5)
	opts.Workers = workers
	if kind.IsIWare() {
		// Exercise the staged CV fan-out too.
		opts.CVFolds = 2
	}
	m, err := Train(split.Train, opts)
	if err != nil {
		t.Fatal(err)
	}
	preds = m.PredictPoints(split.Test)
	testFrom, _ := sc.Data.StepsForYear(year)
	pm, err := NewPlannerModel(m, sc.Data, testFrom-1)
	if err != nil {
		t.Fatal(err)
	}
	pm.Workers = workers
	return preds, pm.RiskMap(1.5), pm.UncertaintyMap(1.5)
}

func assertSameFloats(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d != %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s[%d]: %v != %v (parallel run diverged from sequential)", label, i, a[i], b[i])
		}
	}
}

// TestParallelDeterminismAllKinds is the headline determinism table: for
// every Table II model variant, a Workers=4 run of Train → PredictPoints →
// RiskMap/UncertaintyMap must be byte-identical to the Workers=1 run.
func TestParallelDeterminismAllKinds(t *testing.T) {
	sc := smallScenario(t, 21, false)
	for _, kind := range []ModelKind{SVB, DTB, GPB, SVBiW, DTBiW, GPBiW} {
		t.Run(kind.String(), func(t *testing.T) {
			p1, r1, u1 := kindOutputs(t, sc, kind, 1)
			p4, r4, u4 := kindOutputs(t, sc, kind, 4)
			assertSameFloats(t, "PredictPoints", p1, p4)
			assertSameFloats(t, "RiskMap", r1, r4)
			assertSameFloats(t, "UncertaintyMap", u1, u4)
		})
	}
}

// TestBatchPredictionMatchesPointwise pins the public batch API to the
// pointwise path for both a plain ensemble and an iWare-E model.
func TestBatchPredictionMatchesPointwise(t *testing.T) {
	sc := smallScenario(t, 23, false)
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	X := make([][]float64, len(split.Test))
	for i, p := range split.Test {
		X[i] = p.Features
	}
	for _, kind := range []ModelKind{DTB, GPBiW} {
		t.Run(kind.String(), func(t *testing.T) {
			m, err := Train(split.Train, quickTrainOpts(kind, 9))
			if err != nil {
				t.Fatal(err)
			}
			const effort = 1.3
			probs := m.PredictForEffortBatch(X, effort)
			ps, vs := m.PredictWithVarianceBatch(X, effort)
			for i, x := range X {
				if want := m.PredictForEffort(x, effort); probs[i] != want {
					t.Fatalf("point %d: batch %v != pointwise %v", i, probs[i], want)
				}
				wp, wv := m.PredictWithVariance(x, effort)
				if ps[i] != wp || vs[i] != wv {
					t.Fatalf("point %d: variance batch diverged", i)
				}
			}
		})
	}
}

// TestPlannerModelConcurrentLookups hammers one PlannerModel from many
// goroutines — mixed Detect/Uncertainty/RiskMap calls over overlapping cells
// and efforts — and checks every value against a sequential reference. Run
// under -race this doubles as the memo's data-race proof.
func TestPlannerModelConcurrentLookups(t *testing.T) {
	sc := smallScenario(t, 27, false)
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(split.Train, quickTrainOpts(DTBiW, 7))
	if err != nil {
		t.Fatal(err)
	}
	testFrom, _ := sc.Data.StepsForYear(year)
	newPM := func() *PlannerModel {
		pm, err := NewPlannerModel(m, sc.Data, testFrom-1)
		if err != nil {
			t.Fatal(err)
		}
		return pm
	}
	efforts := []float64{0.5, 1, 2}
	// Sequential reference from a fresh (independently memoized) adapter.
	ref := newPM()
	ref.Workers = 1
	wantDetect := map[float64][]float64{}
	wantUnc := map[float64][]float64{}
	for _, e := range efforts {
		wantDetect[e] = ref.RiskMap(e)
		wantUnc[e] = ref.UncertaintyMap(e)
	}
	pm := newPM()
	n := sc.Park.Grid.NumCells()
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := efforts[g%len(efforts)]
			if g%4 == 0 {
				// Whole-map readers race against pointwise readers. Report
				// through errCh: t.Fatal must not run off the test goroutine.
				got := pm.RiskMap(e)
				if len(got) != len(wantDetect[e]) {
					errCh <- fmt.Errorf("concurrent RiskMap length %d, want %d", len(got), len(wantDetect[e]))
					return
				}
				for cell := range got {
					if got[cell] != wantDetect[e][cell] {
						errCh <- errMismatch(cell, got[cell], wantDetect[e][cell])
						return
					}
				}
				return
			}
			for cell := g % 7; cell < n; cell += 7 {
				if got := pm.Detect(cell, e); got != wantDetect[e][cell] {
					errCh <- errMismatch(cell, got, wantDetect[e][cell])
					return
				}
				if got := pm.Uncertainty(cell, e); got != wantUnc[e][cell] {
					errCh <- errMismatch(cell, got, wantUnc[e][cell])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func errMismatch(cell int, got, want float64) error {
	return fmt.Errorf("concurrent lookup mismatch at cell %d: got %v, want %v", cell, got, want)
}

// TestTable2SweepDeterminism asserts the experiment-layer fan-out returns
// the same rows for any worker count.
func TestTable2SweepDeterminism(t *testing.T) {
	sc := smallScenario(t, 29, false)
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	run := func(workers int) []Table2Row {
		rows, err := RunTable2ForScenario(sc, "SMALL", Table2Options{
			Kinds:      []ModelKind{DTB, DTBiW},
			TestYears:  []int{year},
			Thresholds: 4,
			Members:    4,
			Seed:       31,
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	seq, par4 := run(1), run(4)
	if len(seq) != len(par4) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par4))
	}
	for i := range seq {
		if seq[i] != par4[i] {
			t.Fatalf("row %d: %+v != %+v", i, seq[i], par4[i])
		}
	}
}

// TestPresetPipelineWorkerInvariance runs the serving pipeline on an
// existing preset park at Workers 1, 4 and 8 — train, risk maps, and both
// the default and the forced-hierarchical plan — and requires byte-identical
// outputs. Preset parks sit below HierAutoCells, so the default plan must
// keep using the exact per-post solver (the columnar refactor's
// backwards-compatibility check) while a forced hierarchical plan must obey
// the same determinism contract.
func TestPresetPipelineWorkerInvariance(t *testing.T) {
	sc, err := ScenarioAt("MFNP", ScaleSmall, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	prev := len(sc.Data.Steps) - 1
	type outputs struct {
		risk, unc   []float64
		exact, hier *PlanResult
	}
	run := func(workers int) outputs {
		opts := quickTrainOpts(DTBiW, 53)
		opts.Workers = workers
		m, err := Train(sc.Data.AllPoints(), opts)
		if err != nil {
			t.Fatalf("workers=%d train: %v", workers, err)
		}
		svc := NewService(WithWorkers(workers))
		if _, err := svc.AddModel(ctx, "m", m, sc.Data, prev); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		risk, unc, err := svc.RiskMaps(ctx, "m", 2)
		if err != nil {
			t.Fatalf("workers=%d riskmaps: %v", workers, err)
		}
		exact, err := svc.Plan(ctx, "m", 0, 0.3)
		if err != nil {
			t.Fatalf("workers=%d plan: %v", workers, err)
		}
		hier, err := svc.Plan(ctx, "m", 0, 0.3, WithHierarchical(true))
		if err != nil {
			t.Fatalf("workers=%d hierarchical plan: %v", workers, err)
		}
		return outputs{risk, unc, exact, hier}
	}
	ref := run(1)
	if ref.exact.Hierarchical {
		t.Fatal("default plan on a preset park must use the exact solver")
	}
	if !ref.hier.Hierarchical {
		t.Fatal("WithHierarchical(true) did not force the coarse pass")
	}
	for _, workers := range []int{4, 8} {
		got := run(workers)
		assertSameFloats(t, fmt.Sprintf("workers=%d RiskMap", workers), ref.risk, got.risk)
		assertSameFloats(t, fmt.Sprintf("workers=%d UncertaintyMap", workers), ref.unc, got.unc)
		for _, p := range []struct {
			name     string
			ref, got *PlanResult
		}{{"exact", ref.exact, got.exact}, {"hierarchical", ref.hier, got.hier}} {
			if !reflect.DeepEqual(p.ref.Cells, p.got.Cells) ||
				!reflect.DeepEqual(p.ref.Effort, p.got.Effort) ||
				!reflect.DeepEqual(p.ref.Routes, p.got.Routes) {
				t.Fatalf("workers=%d: %s plan diverged from sequential", workers, p.name)
			}
		}
	}
}
