package paws

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"paws/internal/iware"
	"paws/internal/ml/bagging"
)

// Model persistence: a versioned binary encoding of a trained model, so a
// model trained once (minutes of CPU for the full parks) can be served
// forever without retraining. The format is an 8-byte magic, a big-endian
// uint32 format version, then a gob stream of the model state. Every learner
// serializes its exact fitted state — float64 bit patterns included, down to
// the GP's Cholesky factor — so a loaded model's predictions are
// byte-identical to the original's (asserted for all six ModelKinds by
// TestModelPersistenceRoundTrip).
//
// Version history:
//
//	1: initial format (Kind + TrainOptions + bagging/iWare-E state).
//
// Decoded models are predict-only: learner factories are functions and do
// not survive encoding, so refitting a loaded model returns an error rather
// than silently retraining with different hyper-parameters.

// persistMagic identifies a PAWS model file.
const persistMagic = "PAWSMODL"

// PersistVersion is the format version written by Save.
const PersistVersion = 1

// ErrBadModelFile is wrapped by LoadModel errors for malformed input.
var ErrBadModelFile = errors.New("paws: not a PAWS model file")

// modelEnvelope is the gob payload behind the versioned header.
type modelEnvelope struct {
	Kind        ModelKind
	Opts        TrainOptions
	NumFeatures int
	Plain       *bagging.Ensemble
	IW          *iware.Model
}

// Save writes the model in the versioned binary format. Encoding the same
// model twice yields identical bytes (the state contains no maps), which
// makes saved artifacts content-addressable.
func (m *Model) Save(w io.Writer) error {
	if m.plain == nil && m.iw == nil {
		return errors.New("paws: cannot save an untrained model")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return fmt.Errorf("paws: save model: %w", err)
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(PersistVersion)); err != nil {
		return fmt.Errorf("paws: save model: %w", err)
	}
	env := modelEnvelope{Kind: m.Kind, Opts: m.opts, NumFeatures: m.numFeatures, Plain: m.plain, IW: m.iw}
	if err := gob.NewEncoder(bw).Encode(env); err != nil {
		return fmt.Errorf("paws: save model: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("paws: save model: %w", err)
	}
	return nil
}

// SaveBytes returns the model's versioned binary encoding in memory. The
// encoding is deterministic (same model → identical bytes), which is what
// lets the fleet store (internal/store) address artifacts by content hash.
func (m *Model) SaveBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SaveFile writes the model to a file via Save, creating or truncating it.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("paws: save model: %w", err)
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel reads a model written by Save. It validates the magic and
// rejects versions this build does not understand, so format evolution fails
// loudly instead of mis-decoding.
func LoadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadModelFile, err)
	}
	if !bytes.Equal(magic, []byte(persistMagic)) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadModelFile, magic)
	}
	var version uint32
	if err := binary.Read(br, binary.BigEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrBadModelFile, err)
	}
	if version == 0 || version > PersistVersion {
		return nil, fmt.Errorf("paws: model file has format version %d; this build reads up to %d", version, PersistVersion)
	}
	var env modelEnvelope
	if err := gob.NewDecoder(br).Decode(&env); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrBadModelFile, err)
	}
	if (env.Plain == nil) == (env.IW == nil) {
		return nil, fmt.Errorf("%w: payload must hold exactly one of plain/iWare state", ErrBadModelFile)
	}
	if env.Kind.IsIWare() != (env.IW != nil) {
		return nil, fmt.Errorf("%w: kind %v does not match stored state", ErrBadModelFile, env.Kind)
	}
	return &Model{Kind: env.Kind, opts: env.Opts, numFeatures: env.NumFeatures, plain: env.Plain, iw: env.IW}, nil
}

// LoadModelBytes reads a model from its in-memory encoding (SaveBytes) —
// the decode half of the fleet store's artifact path.
func LoadModelBytes(b []byte) (*Model, error) {
	return LoadModel(bytes.NewReader(b))
}

// LoadModelFile reads a model file written by SaveFile.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("paws: load model: %w", err)
	}
	defer f.Close()
	m, err := LoadModel(f)
	if err != nil {
		return nil, fmt.Errorf("paws: load model %s: %w", path, err)
	}
	return m, nil
}
