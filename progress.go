package paws

// ProgressEvent is one typed progress report from inside the compute
// layers. The long-running entry points emit them through the WithProgress
// option — from where the work actually happens, not bolted on outside:
//
//   - Service.Simulate: Stage "season", Item = policy name, Current =
//     seasons finished for that policy (1-based), Total = seasons.
//   - Service.Train (and every runner that trains a model): Stage "train",
//     Current = weak learners fitted so far, Total = weak learners overall
//     (iWare-E ladder slices, or bagging members for plain kinds).
//   - Service.Table2: Stage "cell", Item = "park/year/kind", Current =
//     grid cells finished, Total = cells in the sweep.
//   - Service.Fig6: Stage "map", Current = effort levels evaluated.
//   - Service.Table3: Stage "trial", Current = field trials finished.
//
// Events are operational telemetry only: they never influence the
// computation, so results remain byte-identical with or without a
// progress callback (asserted by TestProgressDoesNotChangeResults).
type ProgressEvent struct {
	// Stage names the pipeline stage emitting the event.
	Stage string `json:"stage"`
	// Item optionally identifies the unit of work (policy, grid cell).
	Item string `json:"item,omitempty"`
	// Current counts completed units; Total is the known unit count.
	// Current values arrive monotonically per (Stage, Item) but may be
	// observed out of order across concurrent workers.
	Current int `json:"current,omitempty"`
	Total   int `json:"total,omitempty"`
}

// ProgressFunc observes ProgressEvents. Callbacks are invoked from worker
// goroutines while the computation is in flight, possibly concurrently, so
// implementations must be safe for concurrent use and should return
// quickly (slow callbacks stall the worker that fired them).
type ProgressFunc func(ProgressEvent)

// WithProgress registers a progress callback for the long-running entry
// points (Simulate, Train, Table2, Fig6, Table3, and every runner that
// trains models through the merged options). A nil callback disables
// reporting. The callback is observational only — results are
// byte-identical with or without it.
func WithProgress(fn ProgressFunc) Option {
	return func(s *settings) { s.progress = fn }
}

// progressCounter adapts the internal per-weak-learner hooks (plain
// (done, total) int pairs) to a ProgressFunc, tagging them with a stage.
func progressCounter(fn ProgressFunc, stage string) func(done, total int) {
	if fn == nil {
		return nil
	}
	return func(done, total int) {
		fn(ProgressEvent{Stage: stage, Current: done, Total: total})
	}
}
