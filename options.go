package paws

import "paws/internal/plan"

// Option is a functional configuration knob shared by the Service façade:
// the same WithX values tune training (Service.Train), planning
// (Service.PlanStudy, Service.Plan) and the experiment runners
// (Service.Table1/Table2/…). Options irrelevant to a call are ignored, so a
// Service can be constructed once with the full deployment configuration
// (workers, seed, ensemble shape) and reused across every entry point.
//
// Precedence: per-call options override Service-level defaults, which
// override the zero-value paper-flavoured defaults of the underlying option
// structs (TrainOptions.withDefaults et al.).
type Option func(*settings)

// settings is the merged state behind the functional options. Fields mirror
// the legacy option structs (TrainOptions, Table2Options, PlanStudyOptions,
// Table3Options); the *Set flags distinguish "not specified" from genuine
// zero values where zero is meaningful.
type settings struct {
	workers int

	seed int64

	// progress observes ProgressEvents from the compute layers
	// (WithProgress); nil disables reporting.
	progress ProgressFunc

	// Training.
	kind       ModelKind
	kindSet    bool
	thresholds int
	maxThPct   float64
	members    int
	balanced   bool
	cvFolds    int
	gpMaxTrain int
	treeDepth  int

	// Scenario generation.
	scale Scale

	// Experiment sweeps.
	kinds      []ModelKind
	testYears  []int
	trainYears int
	dry        bool

	// Planning.
	betas         []float64
	segmentCounts []int
	posts         int
	radius        int
	maxCells      int
	horizonT      int
	horizonK      float64
	segments      int
	solver        plan.SolverKind
	hierarchical  bool
	hierSet       bool

	// Field tests.
	perGroup           int
	effortPerCellMonth float64
}

// apply folds opts into a copy of s and returns it.
func (s settings) apply(opts []Option) settings {
	for _, o := range opts {
		if o != nil {
			o(&s)
		}
	}
	return s
}

// WithWorkers bounds the goroutines used by training, batch prediction, map
// generation and experiment sweeps (par.Workers semantics: 1 forces
// sequential execution, 0 or negative sizes the pool to GOMAXPROCS).
// Results are byte-identical for any worker count.
func WithWorkers(n int) Option { return func(s *settings) { s.workers = n } }

// WithSeed sets the root random seed for training and scenario generation.
func WithSeed(seed int64) Option {
	return func(s *settings) { s.seed = seed }
}

// WithKind selects the Table II model variant to train.
func WithKind(kind ModelKind) Option {
	return func(s *settings) { s.kind = kind; s.kindSet = true }
}

// WithKinds selects the model variants an experiment sweep runs (default:
// all six).
func WithKinds(kinds ...ModelKind) Option {
	return func(s *settings) { s.kinds = append([]ModelKind(nil), kinds...) }
}

// WithEnsembleSize sets the bagging ensemble size (paper default 10).
func WithEnsembleSize(members int) Option {
	return func(s *settings) { s.members = members }
}

// WithThresholds sets the iWare-E threshold-ladder size (paper: 20 for
// MFNP/QENP, 10 for SWS).
func WithThresholds(n int) Option { return func(s *settings) { s.thresholds = n } }

// WithMaxThresholdPercentile sets the top effort percentile of the iWare-E
// ladder (default 80).
func WithMaxThresholdPercentile(pct float64) Option {
	return func(s *settings) { s.maxThPct = pct }
}

// WithCVFolds enables iWare-E weight optimization with k-fold
// cross-validation (0 keeps uniform weights).
func WithCVFolds(k int) Option { return func(s *settings) { s.cvFolds = k } }

// WithGPMaxTrain caps each Gaussian process's training subsample.
func WithGPMaxTrain(n int) Option { return func(s *settings) { s.gpMaxTrain = n } }

// WithTreeDepth caps decision-tree depth.
func WithTreeDepth(d int) Option { return func(s *settings) { s.treeDepth = d } }

// WithBalancedBagging toggles balanced bagging (undersampling negatives) —
// the paper's remedy for SWS-grade class imbalance.
func WithBalancedBagging(on bool) Option {
	return func(s *settings) { s.balanced = on }
}

// WithScale selects full or reduced park presets for scenario generation.
func WithScale(scale Scale) Option {
	return func(s *settings) { s.scale = scale }
}

// WithPreset applies the paper-flavoured training configuration for a park
// at a scale (TrainOptionsAt): threshold-ladder size, ensemble size, GP
// subsample cap, and balanced bagging for SWS. Later options override
// individual fields.
func WithPreset(park string, scale Scale) Option {
	return func(s *settings) {
		o := TrainOptionsAt(park, s.kind, scale, s.seed)
		s.thresholds = o.Thresholds
		s.members = o.Members
		s.gpMaxTrain = o.GPMaxTrain
		s.balanced = o.Balanced
		s.scale = scale
	}
}

// WithTestYears sets the calendar test years of an experiment sweep
// (default: the last three simulated years).
func WithTestYears(years ...int) Option {
	return func(s *settings) { s.testYears = append([]int(nil), years...) }
}

// WithTrainYears sets the training-window length in years (paper: 3).
func WithTrainYears(n int) Option { return func(s *settings) { s.trainYears = n } }

// WithDrySeason selects the dry-season dataset where available (SWS).
func WithDrySeason(on bool) Option { return func(s *settings) { s.dry = on } }

// WithBetas sets the robustness weights of the Fig. 8(a–c) sweep.
func WithBetas(betas ...float64) Option {
	return func(s *settings) { s.betas = append([]float64(nil), betas...) }
}

// WithSegmentCounts sets the PWL segment counts of the Fig. 8(d–f)/Fig. 9
// sweeps.
func WithSegmentCounts(counts ...int) Option {
	return func(s *settings) { s.segmentCounts = append([]int(nil), counts...) }
}

// WithPosts caps the number of patrol posts a plan study uses.
func WithPosts(n int) Option { return func(s *settings) { s.posts = n } }

// WithRegionShape bounds each post's planning region: breadth-first radius
// and maximum cell count.
func WithRegionShape(radius, maxCells int) Option {
	return func(s *settings) { s.radius = radius; s.maxCells = maxCells }
}

// WithPlanHorizon configures the planner: T time steps per patrol, K
// patrols over the horizon, and the PWL segment count per cell utility.
func WithPlanHorizon(t int, k float64, segments int) Option {
	return func(s *settings) { s.horizonT = t; s.horizonK = k; s.segments = segments }
}

// WithSolver pins the planning strategy (default plan.SolverAuto).
func WithSolver(kind plan.SolverKind) Option {
	return func(s *settings) { s.solver = kind }
}

// WithHierarchical forces hierarchical planning on or off for Service.Plan:
// a coarse Frank-Wolfe pass over aggregated super-cells targets the post's
// refined region before the standard per-post solve (see plan.SolveHierarchical).
// When unset, Plan enables it automatically for parks with at least
// HierAutoCells cells, where a flat breadth-first region would see an
// arbitrary sliver of the park.
func WithHierarchical(on bool) Option {
	return func(s *settings) { s.hierarchical = on; s.hierSet = true }
}

// WithFieldProtocol tunes the Table III field-test protocol: blocks
// selected per risk group and ranger effort intensity (km per cell-month).
func WithFieldProtocol(perGroup int, effortPerCellMonth float64) Option {
	return func(s *settings) {
		s.perGroup = perGroup
		s.effortPerCellMonth = effortPerCellMonth
	}
}

// ---------------------------------------------------------------- adapters

// trainOptions lowers the merged settings to the legacy TrainOptions.
func (s settings) trainOptions() TrainOptions {
	return TrainOptions{
		Kind:                   s.kind,
		Thresholds:             s.thresholds,
		MaxThresholdPercentile: s.maxThPct,
		Members:                s.members,
		Balanced:               s.balanced,
		CVFolds:                s.cvFolds,
		GPMaxTrain:             s.gpMaxTrain,
		TreeDepth:              s.treeDepth,
		Seed:                   s.seed,
		Workers:                s.workers,
		progress:               s.progress,
	}
}

// table2Options lowers the merged settings to Table2Options.
func (s settings) table2Options() Table2Options {
	kinds := s.kinds
	if len(kinds) == 0 && s.kindSet {
		kinds = []ModelKind{s.kind}
	}
	return Table2Options{
		Kinds:      kinds,
		TestYears:  s.testYears,
		TrainYears: s.trainYears,
		Dry:        s.dry,
		Thresholds: s.thresholds,
		Members:    s.members,
		CVFolds:    s.cvFolds,
		GPMaxTrain: s.gpMaxTrain,
		Balanced:   s.balanced,
		Seed:       s.seed,
		Workers:    s.workers,
		progress:   s.progress,
	}
}

// planStudyOptions lowers the merged settings to PlanStudyOptions.
func (s settings) planStudyOptions() PlanStudyOptions {
	testYear := 0
	if len(s.testYears) > 0 {
		testYear = s.testYears[0]
	}
	return PlanStudyOptions{
		TestYear:      testYear,
		Posts:         s.posts,
		Radius:        s.radius,
		MaxCells:      s.maxCells,
		T:             s.horizonT,
		K:             s.horizonK,
		Segments:      s.segments,
		Solver:        s.solver,
		Betas:         s.betas,
		SegmentCounts: s.segmentCounts,
		TrainYears:    s.trainYears,
		Train:         s.trainOptions(),
		Workers:       s.workers,
	}
}

// table3Options lowers the merged settings to Table3Options.
func (s settings) table3Options() Table3Options {
	return Table3Options{
		PerGroup:           s.perGroup,
		TrainYears:         s.trainYears,
		EffortPerCellMonth: s.effortPerCellMonth,
		Train:              s.trainOptions(),
		Seed:               s.seed,
		Workers:            s.workers,
	}
}
