#!/usr/bin/env bash
# pawsgate fleet smoke test: two pawsd replicas share one on-disk model
# store behind a pawsgate. The model is trained via replica A only; the
# store must make it servable by replica B; gate responses must be
# byte-identical to direct replica responses; killing a replica must not
# take the fleet down; and a short deterministic pawsload run must
# produce a sane bench record. Used by CI and runnable locally:
# ./scripts/pawsgate_smoke.sh
set -euo pipefail

PORT_A="${PAWSGATE_SMOKE_PORT_A:-18121}"
PORT_B="${PAWSGATE_SMOKE_PORT_B:-18122}"
PORT_G="${PAWSGATE_SMOKE_PORT_G:-18120}"
ADDR_A="127.0.0.1:$PORT_A"
ADDR_B="127.0.0.1:$PORT_B"
ADDR_G="127.0.0.1:$PORT_G"
WORKDIR="$(mktemp -d)"
STORE="$WORKDIR/store"

cleanup() {
  for pid in "${PID_A:-}" "${PID_B:-}" "${PID_G:-}"; do
    [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

go build -o "$WORKDIR/pawsd" ./cmd/pawsd
go build -o "$WORKDIR/pawsgate" ./cmd/pawsgate
go build -o "$WORKDIR/pawsload" ./cmd/pawsload

# Replica A trains (DTB-iW on the small park is seconds) and publishes to
# the shared store; replica B starts store-only and must pick the model up
# from the store alone.
"$WORKDIR/pawsd" -replica a -store "$STORE" -kind DTB-iW -train \
  -addr "$ADDR_A" -job-workers 2 -store-poll 200ms >"$WORKDIR/a.log" 2>&1 &
PID_A=$!
"$WORKDIR/pawsd" -replica b -store "$STORE" \
  -addr "$ADDR_B" -job-workers 2 -store-poll 200ms >"$WORKDIR/b.log" 2>&1 &
PID_B=$!

wait_http() { # url pid log
  for _ in $(seq 1 120); do
    curl -sf "$1" >/dev/null 2>&1 && return 0
    kill -0 "$2" 2>/dev/null || { echo "process exited early:"; cat "$3"; exit 1; }
    sleep 1
  done
  echo "timeout waiting for $1"; cat "$3"; exit 1
}
wait_http "http://$ADDR_A/healthz" "$PID_A" "$WORKDIR/a.log"
wait_http "http://$ADDR_B/healthz" "$PID_B" "$WORKDIR/b.log"

# Replica B must register the published model via store sync.
for _ in $(seq 1 60); do
  N="$(curl -s "http://$ADDR_B/v1/models" | python3 -c 'import json,sys; print(len(json.load(sys.stdin)["models"]))')"
  [[ "$N" -ge 1 ]] && break
  sleep 1
done
[[ "$N" -ge 1 ]] || { echo "FAIL: replica b never synced the model from the store"; cat "$WORKDIR/b.log"; exit 1; }
curl -s "http://$ADDR_B/v1/models" \
  | python3 -c 'import json,sys; m=json.load(sys.stdin)["models"][0]; assert m["source"]=="store" and m["hash"], m'
echo "ok store sync (replica b serves the model, source=store)"

"$WORKDIR/pawsgate" -addr "$ADDR_G" \
  -backends "http://$ADDR_A,http://$ADDR_B" >"$WORKDIR/gate.log" 2>&1 &
PID_G=$!
wait_http "http://$ADDR_G/gatez" "$PID_G" "$WORKDIR/gate.log"
curl -s "http://$ADDR_G/gatez" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); h=[b for b in d["backends"] if b["healthy"]]; assert len(h)==2, d'
echo "ok gate (2/2 replicas healthy)"

# Byte-identity: predict is fully deterministic, so the gate-routed
# response must equal both direct replica responses byte for byte.
PREDICT='{"model":"default","effort":1.5,"cells":[0,1,2,3]}'
curl -s -X POST -d "$PREDICT" "http://$ADDR_A/v1/predict" -o "$WORKDIR/pred_a.json"
curl -s -X POST -d "$PREDICT" "http://$ADDR_B/v1/predict" -o "$WORKDIR/pred_b.json"
curl -s -X POST -d "$PREDICT" "http://$ADDR_G/v1/predict" -o "$WORKDIR/pred_g.json"
cmp "$WORKDIR/pred_a.json" "$WORKDIR/pred_b.json" || { echo "FAIL: replicas disagree on predict"; exit 1; }
cmp "$WORKDIR/pred_a.json" "$WORKDIR/pred_g.json" || { echo "FAIL: gate predict differs from replica"; exit 1; }
echo "ok predict (replica a ≡ replica b ≡ gate)"

# Riskmap: identical floats everywhere; only the "cached" flag may differ
# (it reports which request warmed the LRU, not what the answer is).
curl -s "http://$ADDR_A/v1/riskmap?model=default&effort=2" -o "$WORKDIR/rm_a.json"
curl -s "http://$ADDR_G/v1/riskmap?model=default&effort=2" -o "$WORKDIR/rm_g.json"
python3 - "$WORKDIR/rm_a.json" "$WORKDIR/rm_g.json" <<'EOF'
import json, sys
a, g = (json.load(open(p)) for p in sys.argv[1:3])
a.pop("cached", None); g.pop("cached", None)
assert a == g, "gate riskmap differs from replica riskmap"
EOF
echo "ok riskmap (gate ≡ replica, modulo the cached flag)"

# Affinity: repeating the same riskmap key through the gate must pin to
# one replica and hit its LRU.
curl -s "http://$ADDR_G/v1/riskmap?model=default&effort=2" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["cached"], "repeat riskmap key not cached"'
echo "ok affinity (repeat riskmap key served from cache)"

# Jobs through the gate: the submission lands on a replica (namespaced
# ID), and polls route to the owner.
JOB_ID="$(curl -s -X POST -d '{"kind":"riskmap","riskmap":{"model":"default","effort":1.25}}' \
  "http://$ADDR_G/v1/jobs" | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["id"].startswith("j-"), d; print(d["id"])')"
for _ in $(seq 1 60); do
  STATE="$(curl -s "http://$ADDR_G/v1/jobs/$JOB_ID" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')"
  [[ "$STATE" == "done" ]] && break
  sleep 1
done
[[ "$STATE" == "done" ]] || { echo "FAIL: gate-routed job stuck in $STATE"; exit 1; }
echo "ok jobs via gate ($JOB_ID done)"

# Short deterministic load run against the gate.
"$WORKDIR/pawsload" -target "http://$ADDR_G" -label smoke -rate 20 -duration 3s \
  -seed 7 -out "$WORKDIR/bench.json"
python3 - "$WORKDIR/bench.json" <<'EOF'
import json, sys
bf = json.load(open(sys.argv[1]))
run = [r for r in bf["runs"] if r["label"] == "smoke"][0]
eps = run["endpoints"]
assert set(eps) >= {"predict", "riskmap"}, eps
for name, st in eps.items():
    assert st["errors"] == 0, (name, st)
    assert st["p50_ms"] <= st["p95_ms"] <= st["p99_ms"], (name, st)
assert run["riskmap_cache_hit_rate"] > 0, run
print("ok pawsload (0 errors, riskmap hit rate %.0f%%)" % (100 * run["riskmap_cache_hit_rate"]))
EOF

# Kill replica A (the trainer). The gate must health-check it out and
# keep serving byte-identical answers from replica B.
kill "$PID_A"; wait "$PID_A" 2>/dev/null || true; PID_A=""
for _ in $(seq 1 60); do
  H="$(curl -s "http://$ADDR_G/gatez" | python3 -c 'import json,sys; print(sum(b["healthy"] for b in json.load(sys.stdin)["backends"]))')"
  [[ "$H" == "1" ]] && break
  sleep 1
done
[[ "$H" == "1" ]] || { echo "FAIL: gate never noticed the dead replica"; exit 1; }
curl -s -X POST -d "$PREDICT" "http://$ADDR_G/v1/predict" -o "$WORKDIR/pred_after.json"
cmp "$WORKDIR/pred_a.json" "$WORKDIR/pred_after.json" \
  || { echo "FAIL: predict changed after replica death"; exit 1; }
curl -sf "http://$ADDR_G/v1/riskmap?model=default&effort=1" >/dev/null \
  || { echo "FAIL: riskmap unavailable after replica death"; exit 1; }
echo "ok failover (replica a dead, gate serves identical answers from b)"

echo "pawsgate fleet smoke test passed"
