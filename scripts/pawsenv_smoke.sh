#!/usr/bin/env bash
# pawsenv fleet smoke test: two pawsd replicas behind a pawsgate serving
# the remote environment surface (/v1/envs). A session created through the
# gate must land on one replica with a replica-prefixed ID; step/get/delete
# must route to that owner (the non-owner answers the authoritative
# structured unknown_env); a full pawssim -remote run driven through the
# gate must be byte-identical to the local driver; and session load must be
# visible on /statusz. Replica A trains the small model and publishes it to
# a shared store for B (pawsd refuses to start with nothing to serve); the
# env surface itself never touches it. Used by CI and runnable locally:
# ./scripts/pawsenv_smoke.sh
set -euo pipefail

PORT_A="${PAWSENV_SMOKE_PORT_A:-18141}"
PORT_B="${PAWSENV_SMOKE_PORT_B:-18142}"
PORT_G="${PAWSENV_SMOKE_PORT_G:-18140}"
ADDR_A="127.0.0.1:$PORT_A"
ADDR_B="127.0.0.1:$PORT_B"
ADDR_G="127.0.0.1:$PORT_G"
WORKDIR="$(mktemp -d)"

cleanup() {
  for pid in "${PID_A:-}" "${PID_B:-}" "${PID_G:-}"; do
    [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

go build -o "$WORKDIR/pawsd" ./cmd/pawsd
go build -o "$WORKDIR/pawsgate" ./cmd/pawsgate
go build -o "$WORKDIR/pawssim" ./cmd/pawssim

STORE="$WORKDIR/store"
"$WORKDIR/pawsd" -replica a -store "$STORE" -kind DTB-iW -train \
  -addr "$ADDR_A" -job-workers 2 -store-poll 200ms >"$WORKDIR/a.log" 2>&1 &
PID_A=$!
"$WORKDIR/pawsd" -replica b -store "$STORE" \
  -addr "$ADDR_B" -job-workers 2 -store-poll 200ms >"$WORKDIR/b.log" 2>&1 &
PID_B=$!

wait_http() { # url pid log
  for _ in $(seq 1 120); do
    curl -sf "$1" >/dev/null 2>&1 && return 0
    kill -0 "$2" 2>/dev/null || { echo "process exited early:"; cat "$3"; exit 1; }
    sleep 1
  done
  echo "timeout waiting for $1"; cat "$3"; exit 1
}
wait_http "http://$ADDR_A/healthz" "$PID_A" "$WORKDIR/a.log"
wait_http "http://$ADDR_B/healthz" "$PID_B" "$WORKDIR/b.log"

"$WORKDIR/pawsgate" -addr "$ADDR_G" \
  -backends "http://$ADDR_A,http://$ADDR_B" >"$WORKDIR/gate.log" 2>&1 &
PID_G=$!
wait_http "http://$ADDR_G/gatez" "$PID_G" "$WORKDIR/gate.log"
echo "ok fleet (2 replicas + gate up)"

# Create a session through the gate: 201, replica-prefixed ID, and the
# full bootstrap observation in the response.
curl -s -X POST -d '{"park":"rand:8","seed":11,"seasons":3,"season_months":1,"bootstrap_months":6}' \
  "http://$ADDR_G/v1/envs" -o "$WORKDIR/create.json"
ENV_ID="$(python3 - "$WORKDIR/create.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
sid = d["session"]["id"]
assert sid.startswith(("e-a-", "e-b-")), d
assert d["obs"]["months"] == 6 and len(d["obs"]["effort"]) == 6, d["obs"]["months"]
print(sid)
EOF
)"
case "$ENV_ID" in
  e-a-*) OWNER="$ADDR_A"; OTHER="$ADDR_B" ;;
  e-b-*) OWNER="$ADDR_B"; OTHER="$ADDR_A" ;;
esac
echo "ok create via gate ($ENV_ID, owner $OWNER)"

# Step once through the gate with a uniform allocation: the step must
# reach the owner (its /statusz counts the step), and the response carries
# the appended month only.
python3 - "$WORKDIR/create.json" <<'EOF' > "$WORKDIR/step.json"
import json, sys
d = json.load(open(sys.argv[1]))
cells = len(d["obs"]["effort"][0])
print(json.dumps({"effort": [1.0] * cells}))
EOF
curl -s -X POST -d @"$WORKDIR/step.json" "http://$ADDR_G/v1/envs/$ENV_ID/step" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["stats"]["season"]==0 and d["delta"]["months"]==7 and not d["done"], d'
curl -s "http://$OWNER/statusz" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin)["envs"]; assert d["active"]==1 and d["steps"]==1, d'
curl -s "http://$OTHER/statusz" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin)["envs"]; assert d["sessions"]==0, d'
echo "ok step via gate (owner stepped, non-owner idle)"

# The non-owner, asked directly, answers the authoritative structured
# unknown_env — not a proxy error, not a 200.
STATUS="$(curl -s -o "$WORKDIR/other.json" -w '%{http_code}' "http://$OTHER/v1/envs/$ENV_ID")"
[[ "$STATUS" == "404" ]] || { echo "FAIL: non-owner answered $STATUS"; cat "$WORKDIR/other.json"; exit 1; }
python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); assert d["error"]["code"]=="unknown_env", d' "$WORKDIR/other.json"
# The gate, holding the ID's namespace, routes the lookup to the owner.
curl -s "http://$ADDR_G/v1/envs/$ENV_ID" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["season"]==1 and not d["done"], d'
echo "ok owner routing (gate reaches owner, non-owner says unknown_env)"

curl -s -X DELETE "http://$ADDR_G/v1/envs/$ENV_ID" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["session"]["id"], d'
echo "ok delete via gate"

# The acceptance bar: a full pawssim comparison (uniform + both learned
# policies, 3 seasons) driven remotely through the gate's env sessions must
# render byte-identical to the local driver.
SIM_ARGS=(-park rand:8 -seed 11 -policies uniform,thompson,softmax \
  -seasons 3 -season-months 1 -bootstrap 6 -workers 2)
"$WORKDIR/pawssim" "${SIM_ARGS[@]}" > "$WORKDIR/local.txt"
"$WORKDIR/pawssim" "${SIM_ARGS[@]}" -remote "http://$ADDR_G" > "$WORKDIR/remote.txt"
cmp "$WORKDIR/local.txt" "$WORKDIR/remote.txt" \
  || { echo "FAIL: remote env run differs from local driver"; diff "$WORKDIR/local.txt" "$WORKDIR/remote.txt" | head; exit 1; }
echo "ok remote ≡ local (pawssim via gate env sessions byte-identical)"

# The remote run left its sessions deleted; the env instruments must have
# seen them.
curl -s "http://$ADDR_A/metricsz" "http://$ADDR_B/metricsz" > "$WORKDIR/metrics.txt"
grep -q 'paws_env_steps_total' "$WORKDIR/metrics.txt" \
  || { echo "FAIL: env metrics missing from /metricsz"; exit 1; }
echo "pawsenv fleet smoke test passed"
