#!/usr/bin/env bash
# Observability smoke test: two pawsd replicas behind a pawsgate, a short
# deterministic pawsload run, then end-to-end assertions over the new
# observability surface — nonzero /metricsz counters on the gate and both
# replicas, a server-observed riskmap hit rate consistent with the load
# report, a gate-minted X-Paws-Trace visible in the replica's /tracez,
# and a completed job's trace carrying at least one compute-stage span.
# Used by CI and runnable locally: ./scripts/pawsobs_smoke.sh
set -euo pipefail

PORT_A="${PAWSOBS_SMOKE_PORT_A:-18131}"
PORT_B="${PAWSOBS_SMOKE_PORT_B:-18132}"
PORT_G="${PAWSOBS_SMOKE_PORT_G:-18130}"
ADDR_A="127.0.0.1:$PORT_A"
ADDR_B="127.0.0.1:$PORT_B"
ADDR_G="127.0.0.1:$PORT_G"
WORKDIR="$(mktemp -d)"
STORE="$WORKDIR/store"

cleanup() {
  for pid in "${PID_A:-}" "${PID_B:-}" "${PID_G:-}"; do
    [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

go build -o "$WORKDIR/pawsd" ./cmd/pawsd
go build -o "$WORKDIR/pawsgate" ./cmd/pawsgate
go build -o "$WORKDIR/pawsload" ./cmd/pawsload

"$WORKDIR/pawsd" -replica a -store "$STORE" -kind DTB-iW -train \
  -addr "$ADDR_A" -job-workers 2 -store-poll 200ms >"$WORKDIR/a.log" 2>&1 &
PID_A=$!
"$WORKDIR/pawsd" -replica b -store "$STORE" \
  -addr "$ADDR_B" -job-workers 2 -store-poll 200ms >"$WORKDIR/b.log" 2>&1 &
PID_B=$!

wait_http() { # url pid log
  for _ in $(seq 1 120); do
    curl -sf "$1" >/dev/null 2>&1 && return 0
    kill -0 "$2" 2>/dev/null || { echo "process exited early:"; cat "$3"; exit 1; }
    sleep 1
  done
  echo "timeout waiting for $1"; cat "$3"; exit 1
}
wait_http "http://$ADDR_A/healthz" "$PID_A" "$WORKDIR/a.log"
wait_http "http://$ADDR_B/healthz" "$PID_B" "$WORKDIR/b.log"
for _ in $(seq 1 60); do
  N="$(curl -s "http://$ADDR_B/v1/models" | python3 -c 'import json,sys; print(len(json.load(sys.stdin)["models"]))')"
  [[ "$N" -ge 1 ]] && break
  sleep 1
done
[[ "$N" -ge 1 ]] || { echo "FAIL: replica b never synced the model"; cat "$WORKDIR/b.log"; exit 1; }

"$WORKDIR/pawsgate" -addr "$ADDR_G" \
  -backends "http://$ADDR_A,http://$ADDR_B" >"$WORKDIR/gate.log" 2>&1 &
PID_G=$!
wait_http "http://$ADDR_G/gatez" "$PID_G" "$WORKDIR/gate.log"

# Deterministic load through the gate first, so the replica cache
# counters mostly reflect the load run when we compare hit rates.
"$WORKDIR/pawsload" -target "http://$ADDR_G" -label obs-smoke -rate 20 -duration 3s \
  -seed 7 -out "$WORKDIR/bench.json"

# The load report must carry trace IDs on its slowest requests.
python3 - "$WORKDIR/bench.json" <<'EOF'
import json, sys
run = [r for r in json.load(open(sys.argv[1]))["runs"] if r["label"] == "obs-smoke"][0]
slow = [s for st in run["endpoints"].values() for s in st.get("slowest", [])]
assert slow, "no slowest-request records in the bench file"
assert all(s.get("trace_id") for s in slow), slow
print("ok pawsload slowest (%d records, all with trace IDs)" % len(slow))
EOF

# Nonzero /metricsz counters on the gate and both replicas.
curl -s "http://$ADDR_G/metricsz" -o "$WORKDIR/gate.metrics"
python3 - "$WORKDIR/gate.metrics" <<'EOF'
import sys
text = open(sys.argv[1]).read()
def total(prefix):
    return sum(float(l.rsplit(" ", 1)[1]) for l in text.splitlines()
               if l.startswith(prefix) and not l.startswith("#"))
assert total("pawsgate_http_requests_total") > 0, "no gate requests counted"
assert total("pawsgate_route_total{strategy=\"affinity\"}") > 0, "no affinity routes"
assert total("pawsgate_replica_picks_total") > 0, "no replica picks"
print("ok gate metricsz (requests, affinity routes, replica picks all nonzero)")
EOF
for ADDR in "$ADDR_A" "$ADDR_B"; do
  curl -s "http://$ADDR/metricsz" \
    | python3 -c '
import sys
text = sys.stdin.read()
def total(prefix):
    return sum(float(l.rsplit(" ", 1)[1]) for l in text.splitlines()
               if l.startswith(prefix) and not l.startswith("#"))
assert total("paws_http_requests_total") > 0, "no replica requests counted"
assert total("paws_http_request_seconds_count") > 0, "no latency observations"
'
done
echo "ok replica metricsz (both replicas counted requests and latencies)"

# Server-observed riskmap hit rate vs the load report: the replicas
# lookups must cover the load run's riskmap ops and both sides must
# agree a cache is winning.
RATES="$(for ADDR in "$ADDR_A" "$ADDR_B"; do curl -s "http://$ADDR/metricsz"; done \
  | grep -E '^paws_riskmap_cache_(hits|misses)_total' || true)"
python3 - "$WORKDIR/bench.json" <<EOF
import json, sys
lines = """$RATES""".split()
vals = [float(v) for v in lines[1::2]]
names = lines[0::2]
hits = sum(v for n, v in zip(names, vals) if "hits" in n)
misses = sum(v for n, v in zip(names, vals) if "misses" in n)
run = [r for r in json.load(open("$WORKDIR/bench.json"))["runs"] if r["label"] == "obs-smoke"][0]
load_rate = run["riskmap_cache_hit_rate"]
load_riskmaps = run["endpoints"]["riskmap"]["requests"]
assert hits + misses >= load_riskmaps, (hits, misses, load_riskmaps)
server_rate = hits / (hits + misses)
assert load_rate > 0 and server_rate > 0, (load_rate, server_rate)
assert abs(server_rate - load_rate) < 0.5, (server_rate, load_rate)
print("ok riskmap hit rate (server %.0f%% vs load report %.0f%%)" % (100 * server_rate, 100 * load_rate))
EOF

# End-to-end trace: a gate-minted X-Paws-Trace must name the same
# request in the gate's and a replica's /tracez rings. The replica
# records its trace in a deferred middleware after the response bytes
# are already on the wire, so poll briefly rather than read once.
TRACE="$(curl -si "http://$ADDR_G/v1/riskmap?model=default&effort=1.125" \
  | tr -d '\r' | sed -n 's/^X-Paws-Trace: //Ip' | head -n1)"
[[ -n "$TRACE" ]] || { echo "FAIL: gate response has no X-Paws-Trace header"; exit 1; }
in_tracez() { # trace addr...
  local trace="$1"; shift
  for _ in $(seq 1 20); do
    for addr in "$@"; do
      curl -s "http://$addr/tracez" | grep -q "$trace" && return 0
    done
    sleep 0.1
  done
  return 1
}
in_tracez "$TRACE" "$ADDR_G" \
  || { echo "FAIL: trace $TRACE missing from gate /tracez"; exit 1; }
in_tracez "$TRACE" "$ADDR_A" "$ADDR_B" \
  || { echo "FAIL: trace $TRACE missing from both replicas' /tracez"; exit 1; }
echo "ok trace propagation (gate-minted $TRACE in gate and replica rings)"

# A completed job's trace must reuse the submit's gate-minted ID and
# carry at least one compute-stage span.
SUBMIT="$(curl -si -X POST -d '{"kind":"riskmap","riskmap":{"model":"default","effort":1.375}}' \
  "http://$ADDR_G/v1/jobs" | tr -d '\r')"
JOB_TRACE="$(printf '%s\n' "$SUBMIT" | sed -n 's/^X-Paws-Trace: //Ip' | head -n1)"
JOB_ID="$(printf '%s\n' "$SUBMIT" | tail -n1 | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')"
[[ -n "$JOB_TRACE" && -n "$JOB_ID" ]] || { echo "FAIL: job submit missing trace or id"; exit 1; }
for _ in $(seq 1 60); do
  STATE="$(curl -s "http://$ADDR_G/v1/jobs/$JOB_ID" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')"
  [[ "$STATE" == "done" ]] && break
  sleep 1
done
[[ "$STATE" == "done" ]] || { echo "FAIL: job $JOB_ID stuck in $STATE"; exit 1; }
in_tracez "$JOB_TRACE" "$ADDR_A" "$ADDR_B" \
  || { echo "FAIL: job trace $JOB_TRACE missing from both replicas' /tracez"; exit 1; }
( curl -s "http://$ADDR_A/tracez"; curl -s "http://$ADDR_B/tracez" ) \
  | python3 -c "
import json, sys
raw = sys.stdin.read().strip()
traces = []
dec = json.JSONDecoder()
while raw:
    d, n = dec.raw_decode(raw)
    traces += d['traces']
    raw = raw[n:].lstrip()
jobs = [t for t in traces if t['trace_id'] == '$JOB_TRACE' and t['op'].startswith('job:')]
assert jobs, 'no job trace under the submit trace ID $JOB_TRACE'
assert any(t.get('spans') for t in jobs), jobs
names = sorted({s['name'] for t in jobs for s in t.get('spans') or []})
print('ok job trace (op %s, spans: %s)' % (jobs[0]['op'], ','.join(names)))
"

echo "pawsobs smoke test passed"
