#!/usr/bin/env bash
# pawssim smoke test: run a one-season (3-month) closed-loop simulation of
# two policies on a small procedural park and assert the report is sane and
# byte-identical across worker counts. Used by CI and runnable locally:
# ./scripts/pawssim_smoke.sh
set -euo pipefail

WORKDIR="$(mktemp -d)"
BIN="$WORKDIR/pawssim"
trap 'rm -rf "$WORKDIR"' EXIT

go build -o "$BIN" ./cmd/pawssim

ARGS=(-park rand:16 -seed 7 -seasons 1 -policies paws,uniform)
"$BIN" "${ARGS[@]}" -workers 1 >"$WORKDIR/w1.txt"
"$BIN" "${ARGS[@]}" -workers 8 >"$WORKDIR/w8.txt"

if ! diff -u "$WORKDIR/w1.txt" "$WORKDIR/w8.txt"; then
  echo "FAIL: report differs between -workers 1 and -workers 8"
  exit 1
fi

grep -q "^park rand-16 " "$WORKDIR/w1.txt" || { echo "FAIL: missing park header"; cat "$WORKDIR/w1.txt"; exit 1; }
grep -q "^total paws " "$WORKDIR/w1.txt" || { echo "FAIL: missing paws totals"; cat "$WORKDIR/w1.txt"; exit 1; }
grep -q "^total uniform " "$WORKDIR/w1.txt" || { echo "FAIL: missing uniform totals"; cat "$WORKDIR/w1.txt"; exit 1; }

cat "$WORKDIR/w1.txt"
echo "pawssim smoke test passed"
