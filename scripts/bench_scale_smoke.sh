#!/usr/bin/env bash
# Scale smoke test: the columnar data path on a 10^4-cell procedural park
# (rand:7@10000) through build → train → risk maps → hierarchical plan, with
# every output byte-compared across -workers 1 and 8, plus the /v1/plan HTTP
# round trip — all under a wall budget. Also vets and race-tests the packages
# the scale work refactored. Used by CI and runnable locally:
# ./scripts/bench_scale_smoke.sh
set -euo pipefail

# Wall budget in seconds for the smoke tests (the 10^4 fixture builds in
# seconds; the budget exists to catch accidental quadratic regressions).
BUDGET="${PAWS_SCALE_SMOKE_BUDGET:-600}"

echo "== vet refactored packages"
go vet ./internal/dataset ./internal/geo ./internal/plan ./internal/ml/... .

echo "== race-test the planner and geometry under -short"
go test -race -short -count=1 ./internal/plan ./internal/geo

echo "== scale smoke (workers 1/8 diff) + /v1/plan end-to-end at 1e4 cells"
PAWS_SCALE_SMOKE=1 PAWS_SCALE_E2E=1e4 timeout "$BUDGET" \
  go test -run 'TestScaleSmoke|TestScalePlanEndToEnd' -count=1 -v .

echo "scale smoke test passed"
