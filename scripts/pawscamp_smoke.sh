#!/usr/bin/env bash
# pawscamp smoke test: run a 2-park × 2-policy × 2-seed campaign (one season
# per cell) and assert the paired-comparison table and the JSON report are
# byte-identical across worker counts. Used by CI and runnable locally:
# ./scripts/pawscamp_smoke.sh
set -euo pipefail

WORKDIR="$(mktemp -d)"
BIN="$WORKDIR/pawscamp"
trap 'rm -rf "$WORKDIR"' EXIT

go build -o "$BIN" ./cmd/pawscamp

ARGS=(-parks rand:16,rand:8 -policies paws,uniform -seeds 1,2 -seasons 1)
"$BIN" "${ARGS[@]}" -workers 1 -json "$WORKDIR/w1.json" >"$WORKDIR/w1.txt"
"$BIN" "${ARGS[@]}" -workers 8 -json "$WORKDIR/w8.json" >"$WORKDIR/w8.txt"

if ! diff -u "$WORKDIR/w1.txt" "$WORKDIR/w8.txt"; then
  echo "FAIL: table differs between -workers 1 and -workers 8"
  exit 1
fi
if ! diff -q "$WORKDIR/w1.json" "$WORKDIR/w8.json"; then
  echo "FAIL: JSON report differs between -workers 1 and -workers 8"
  exit 1
fi

grep -q "= 4 cells × 2 policies, baseline uniform" "$WORKDIR/w1.txt" || { echo "FAIL: missing campaign header"; cat "$WORKDIR/w1.txt"; exit 1; }
grep -q "^park rand:16 " "$WORKDIR/w1.txt" || { echo "FAIL: missing rand:16 block"; cat "$WORKDIR/w1.txt"; exit 1; }
grep -q "^park rand:8 " "$WORKDIR/w1.txt" || { echo "FAIL: missing rand:8 block"; cat "$WORKDIR/w1.txt"; exit 1; }
grep -q "paired detection deltas vs uniform" "$WORKDIR/w1.txt" || { echo "FAIL: missing paired deltas"; cat "$WORKDIR/w1.txt"; exit 1; }
grep -q '"per_cell"' "$WORKDIR/w1.json" || { echo "FAIL: JSON report missing per-cell deltas"; exit 1; }

cat "$WORKDIR/w1.txt"
echo "pawscamp smoke test passed"
