#!/usr/bin/env bash
# pawsd smoke test: train-and-persist a small model, serve it, hit the three
# /v1 endpoints, and assert 200s with well-formed JSON. Used by CI and
# runnable locally: ./scripts/pawsd_smoke.sh
set -euo pipefail

ADDR="127.0.0.1:${PAWSD_SMOKE_PORT:-18099}"
WORKDIR="$(mktemp -d)"
BIN="$WORKDIR/pawsd"
MODEL="$WORKDIR/model.paws"
LOG="$WORKDIR/pawsd.log"

cleanup() {
  [[ -n "${SERVER_PID:-}" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/pawsd

# DTB-iW trains in seconds on the small park; -train persists the model.
"$BIN" -addr "$ADDR" -kind DTB-iW -train -model "$MODEL" >"$LOG" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 120); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "pawsd exited early:"; cat "$LOG"; exit 1; }
  sleep 1
done

check_json() { # name url [curl args...]
  local name="$1" url="$2"; shift 2
  local body status
  body="$(curl -s -w '\n%{http_code}' "$@" "http://$ADDR$url")"
  status="${body##*$'\n'}"
  body="${body%$'\n'*}"
  if [[ "$status" != "200" ]]; then
    echo "FAIL $name: status $status body: $body"; exit 1
  fi
  if ! python3 -c "import json,sys; json.loads(sys.argv[1])" "$body"; then
    echo "FAIL $name: response is not valid JSON: $body"; exit 1
  fi
  echo "ok $name ($status): ${body:0:120}"
}

check_json healthz /healthz
check_json predict /v1/predict -X POST -d '{"model":"default","effort":1.5,"cells":[0,1,2,3]}'
# The predict response must actually carry probabilities.
curl -s -X POST -d '{"model":"default","effort":1.5,"cells":[0,1,2,3]}' "http://$ADDR/v1/predict" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert len(d["probs"])==4 and all(0<=p<=1 for p in d["probs"]), d'
check_json riskmap '/v1/riskmap?model=default&effort=2'
check_json plan /v1/plan -X POST -d '{"model":"default","post":0,"beta":0.9,"radius":2,"max_cells":12,"t":5,"k":2,"segments":6}'

# The persisted model must reload: restart without -train.
kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true
"$BIN" -addr "$ADDR" -kind DTB-iW -model "$MODEL" >"$LOG" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 60); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "pawsd (reload) exited early:"; cat "$LOG"; exit 1; }
  sleep 1
done
grep -q "loading persisted model" "$LOG" || { echo "FAIL: reload did not use the persisted model"; cat "$LOG"; exit 1; }
check_json predict-reloaded /v1/predict -X POST -d '{"model":"default","effort":1.5,"cells":[0,1,2,3]}'

echo "pawsd smoke test passed"
