#!/usr/bin/env bash
# pawsd async-jobs smoke test: serve a small model, submit an async simulate
# job, stream its NDJSON events, poll it to completion, and diff its stored
# result against the synchronous /v1/simulate response (must be
# byte-identical). Used by CI and runnable locally:
# ./scripts/pawsd_jobs_smoke.sh
set -euo pipefail

ADDR="127.0.0.1:${PAWSD_JOBS_SMOKE_PORT:-18109}"
WORKDIR="$(mktemp -d)"
BIN="$WORKDIR/pawsd"
LOG="$WORKDIR/pawsd.log"

cleanup() {
  [[ -n "${SERVER_PID:-}" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/pawsd

# DTB-iW trains in seconds on the small park; simulate jobs need no model,
# but training one exercises the full startup path.
"$BIN" -addr "$ADDR" -kind DTB-iW -train -job-workers 2 >"$LOG" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 120); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "pawsd exited early:"; cat "$LOG"; exit 1; }
  sleep 1
done

SIM_PARAMS='{"park":"rand:16","seasons":2,"policies":["uniform","historical"],"seed":99}'

# Discovery endpoint lists the model trained at startup.
curl -s "http://$ADDR/v1/models" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); m=d["models"]; assert m and m[0]["name"]=="default" and m[0]["feature_dim"]>1, d'
echo "ok models"

# Synchronous run first (the byte-identity baseline).
curl -s -X POST -d "$SIM_PARAMS" "http://$ADDR/v1/simulate" -o "$WORKDIR/sync.json"
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$WORKDIR/sync.json"
echo "ok sync simulate"

# Submit the same run as an async job.
JOB_ID="$(curl -s -X POST -d "{\"kind\":\"simulate\",\"simulate\":$SIM_PARAMS}" "http://$ADDR/v1/jobs" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["state"] in ("queued","running"), d; print(d["id"])')"
echo "ok submit ($JOB_ID)"

# Poll the snapshot to completion.
for _ in $(seq 1 120); do
  STATE="$(curl -s "http://$ADDR/v1/jobs/$JOB_ID" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')"
  [[ "$STATE" == "done" ]] && break
  [[ "$STATE" == "failed" || "$STATE" == "canceled" ]] && { echo "FAIL: job ended $STATE"; curl -s "http://$ADDR/v1/jobs/$JOB_ID"; exit 1; }
  sleep 1
done
[[ "$STATE" == "done" ]] || { echo "FAIL: job stuck in $STATE"; exit 1; }
echo "ok poll (state done)"

# The event stream must carry ≥ 1 season event per season per policy
# (2 seasons × 2 policies = 4) and end with the done lifecycle event.
cat > "$WORKDIR/check_events.py" <<'EOF'
import json, sys
events = [json.loads(line) for line in sys.stdin if line.strip()]
seasons = [e for e in events if e["stage"] == "season"]
states = [e["item"] for e in events if e["stage"] == "state"]
assert len(seasons) >= 4, f"want >=4 season events, got {seasons}"
assert states and states[0] == "running" and states[-1] == "done", states
assert [e["seq"] for e in events] == list(range(len(events))), "seqs not dense"
print(f"ok events ({len(seasons)} season events)")
EOF
curl -s "http://$ADDR/v1/jobs/$JOB_ID/events" | python3 "$WORKDIR/check_events.py"

# The stored result must be byte-identical to the synchronous response.
curl -s "http://$ADDR/v1/jobs/$JOB_ID/result" -o "$WORKDIR/async.json"
cmp "$WORKDIR/sync.json" "$WORKDIR/async.json" \
  || { echo "FAIL: async result differs from sync response"; exit 1; }
echo "ok result (byte-identical to sync /v1/simulate)"

# Cancel semantics: a long job accepts DELETE and reaches canceled.
LONG_ID="$(curl -s -X POST -d '{"kind":"simulate","simulate":{"park":"MFNP","seasons":8,"policies":["paws"]}}' \
  "http://$ADDR/v1/jobs" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')"
curl -s -X DELETE "http://$ADDR/v1/jobs/$LONG_ID" >/dev/null
for _ in $(seq 1 60); do
  STATE="$(curl -s "http://$ADDR/v1/jobs/$LONG_ID" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')"
  [[ "$STATE" == "canceled" ]] && break
  sleep 1
done
[[ "$STATE" == "canceled" ]] || { echo "FAIL: canceled job ended $STATE"; exit 1; }
curl -s "http://$ADDR/v1/jobs/$LONG_ID/result" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["error"]["code"]=="canceled", d'
echo "ok cancel (state canceled, error code canceled)"

echo "pawsd jobs smoke test passed"
