#!/usr/bin/env bash
# pawsvet smoke test: build the analyzer, prove every check still fires on a
# scratch module seeded with one violation per check (so a check cannot be
# removed or neutered without CI failing), and assert the repository itself
# is pawsvet-clean. Used by CI and runnable locally:
# ./scripts/pawsvet_smoke.sh
set -euo pipefail

WORKDIR="$(mktemp -d)"
BIN="$WORKDIR/pawsvet"
trap 'rm -rf "$WORKDIR"' EXIT

REPO="$(pwd)"
go build -o "$BIN" ./cmd/pawsvet

echo "== pawsvet -list names every check"
LIST="$("$BIN" -list)"
for check in wallclock globalrand maporder goroutine errenvelope; do
  if ! grep -q "^$check\b" <<<"$LIST"; then
    echo "FAIL: check $check missing from pawsvet -list:"
    echo "$LIST"
    exit 1
  fi
done

echo "== seed a scratch module with one violation per check"
SCRATCH="$WORKDIR/scratch"
mkdir -p "$SCRATCH"/internal/{sim,ml,campaign,stats,serve}
cat >"$SCRATCH/go.mod" <<'EOF'
module scratch

go 1.24
EOF
cat >"$SCRATCH/internal/sim/clock.go" <<'EOF'
package sim

import "time"

func Stamp() time.Time { return time.Now() }
EOF
cat >"$SCRATCH/internal/ml/noise.go" <<'EOF'
package ml

import "math/rand"

func Noise() float64 { return rand.Float64() }
EOF
cat >"$SCRATCH/internal/campaign/emit.go" <<'EOF'
package campaign

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
EOF
cat >"$SCRATCH/internal/stats/spawn.go" <<'EOF'
package stats

func Spawn(f func()) { go f() }
EOF
cat >"$SCRATCH/internal/serve/handler.go" <<'EOF'
package serve

import "net/http"

func Handle(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest)
}
EOF

echo "== pawsvet must fail the seeded module with one finding per check"
set +e
(cd "$SCRATCH" && "$BIN" ./...) >"$WORKDIR/findings.txt" 2>&1
STATUS=$?
set -e
if [[ "$STATUS" -ne 1 ]]; then
  echo "FAIL: pawsvet exit $STATUS on seeded-bad module, want 1"
  cat "$WORKDIR/findings.txt"
  exit 1
fi
for check in wallclock globalrand maporder goroutine errenvelope; do
  if ! grep -q ": $check: " "$WORKDIR/findings.txt"; then
    echo "FAIL: seeded violation for $check not reported:"
    cat "$WORKDIR/findings.txt"
    exit 1
  fi
done

echo "== pawsvet -json emits machine-readable findings"
set +e
(cd "$SCRATCH" && "$BIN" -json ./...) >"$WORKDIR/findings.json" 2>&1
STATUS=$?
set -e
if [[ "$STATUS" -ne 1 ]] || ! grep -q '"check": "wallclock"' "$WORKDIR/findings.json"; then
  echo "FAIL: -json mode (exit $STATUS):"
  cat "$WORKDIR/findings.json"
  exit 1
fi

echo "== the repository itself must be pawsvet-clean"
if ! (cd "$REPO" && "$BIN" ./...); then
  echo "FAIL: pawsvet reports findings on the repository"
  exit 1
fi

echo "pawsvet smoke test passed"
