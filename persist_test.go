package paws

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"paws/internal/ml/bagging"
)

// TestModelPersistenceRoundTrip is the golden persistence contract: for all
// six ModelKinds, save → load must reproduce the exact prediction floats of
// the original model — batch, pointwise, and with-variance paths.
func TestModelPersistenceRoundTrip(t *testing.T) {
	sc := smallScenario(t, 31, false)
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	X := make([][]float64, len(split.Test))
	for i, p := range split.Test {
		X[i] = p.Features
	}
	efforts := []float64{0, 0.7, 1.5, 3.2}
	for _, kind := range []ModelKind{SVB, DTB, GPB, SVBiW, DTBiW, GPBiW} {
		t.Run(kind.String(), func(t *testing.T) {
			opts := quickTrainOpts(kind, 41)
			if kind.IsIWare() {
				opts.CVFolds = 2 // non-uniform weights must survive the trip
			}
			m, err := Train(split.Train, opts)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadModel(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Kind != kind {
				t.Fatalf("loaded kind %v, want %v", loaded.Kind, kind)
			}
			for _, e := range efforts {
				assertSameFloats(t, "PredictForEffortBatch",
					m.PredictForEffortBatch(X, e), loaded.PredictForEffortBatch(X, e))
				p0, v0 := m.PredictWithVarianceBatch(X, e)
				p1, v1 := loaded.PredictWithVarianceBatch(X, e)
				assertSameFloats(t, "PredictWithVarianceBatch p", p0, p1)
				assertSameFloats(t, "PredictWithVarianceBatch v", v0, v1)
			}
			assertSameFloats(t, "PredictPoints",
				m.PredictPoints(split.Test), loaded.PredictPoints(split.Test))
			for i := 0; i < len(X) && i < 5; i++ {
				if a, b := m.PredictForEffort(X[i], 1.2), loaded.PredictForEffort(X[i], 1.2); a != b {
					t.Fatalf("pointwise PredictForEffort diverged: %v != %v", a, b)
				}
			}

			// Encoding is deterministic: saving the same model twice yields
			// identical bytes (no map state anywhere in the model).
			var buf2 bytes.Buffer
			if err := m.Save(&buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("two saves of the same model produced different bytes")
			}
		})
	}
}

// TestModelPersistenceFile exercises the SaveFile/LoadModelFile convenience
// path and the PlannerModel construction on a loaded model.
func TestModelPersistenceFile(t *testing.T) {
	sc := smallScenario(t, 33, false)
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(split.Train, quickTrainOpts(GPBiW, 43))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.paws")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	testFrom, _ := sc.Data.StepsForYear(year)
	pm0, err := NewPlannerModel(m, sc.Data, testFrom-1)
	if err != nil {
		t.Fatal(err)
	}
	pm1, err := NewPlannerModel(loaded, sc.Data, testFrom-1)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFloats(t, "RiskMap", pm0.RiskMap(1.5), pm1.RiskMap(1.5))
	assertSameFloats(t, "UncertaintyMap", pm0.UncertaintyMap(1.5), pm1.UncertaintyMap(1.5))
}

// TestLoadModelRejectsGarbage checks header validation fails loudly.
func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("not a model file at all"))); !errors.Is(err, ErrBadModelFile) {
		t.Fatalf("garbage magic: err = %v, want ErrBadModelFile", err)
	}
	if _, err := LoadModel(bytes.NewReader(nil)); !errors.Is(err, ErrBadModelFile) {
		t.Fatalf("empty input: err = %v, want ErrBadModelFile", err)
	}
	// Valid magic, future version.
	future := append([]byte(persistMagic), 0, 0, 0, 99)
	if _, err := LoadModel(bytes.NewReader(future)); err == nil || errors.Is(err, ErrBadModelFile) {
		t.Fatalf("future version: err = %v, want a version error distinct from ErrBadModelFile", err)
	}
	// Valid header, truncated payload.
	trunc := append([]byte(persistMagic), 0, 0, 0, 1)
	if _, err := LoadModel(bytes.NewReader(trunc)); !errors.Is(err, ErrBadModelFile) {
		t.Fatalf("truncated payload: err = %v, want ErrBadModelFile", err)
	}
}

// TestLoadedModelIsPredictOnly checks a decoded ensemble refuses to refit
// (its base-learner factory did not survive encoding).
func TestLoadedModelIsPredictOnly(t *testing.T) {
	sc := smallScenario(t, 35, false)
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(split.Train, quickTrainOpts(DTB, 45))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var X [][]float64
	var y []int
	for _, p := range split.Train[:10] {
		X = append(X, p.Features)
		y = append(y, p.Label)
	}
	if err := loaded.Ensemble().Fit(X, y); !errors.Is(err, bagging.ErrNoFactory) {
		t.Fatalf("refit of loaded ensemble: err = %v, want bagging.ErrNoFactory", err)
	}
}
