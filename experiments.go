package paws

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"paws/internal/dataset"
	"paws/internal/field"
	"paws/internal/game"
	"paws/internal/geo"
	"paws/internal/par"
	"paws/internal/plan"
	"paws/internal/stats"
)

// This file hosts the experiment runners that regenerate every table and
// figure of the paper's evaluation (see DESIGN.md §4 for the index).
// Each runner takes explicit scale parameters so the benchmark harness can
// run reduced instances while cmd/pawstables and cmd/pawsfigs run the full
// presets.

// ---------------------------------------------------------------- Table I

// Table1Row mirrors one column of Table I.
type Table1Row = dataset.Stats

// RunTable1 computes dataset statistics for the three parks plus the SWS
// dry-season view. The three park scenarios generate on up to workers
// goroutines (par.Workers semantics); rows come back in the fixed park
// order regardless of which finishes first.
func RunTable1(seed int64, workers int) ([]Table1Row, error) {
	return sansCtx(func(ctx context.Context) ([]Table1Row, error) {
		return RunTable1Ctx(ctx, seed, workers)
	})
}

// RunTable1Ctx is RunTable1 under a context, observed between (and inside)
// the per-park scenario generations.
func RunTable1Ctx(ctx context.Context, seed int64, workers int) ([]Table1Row, error) {
	parks := []string{"MFNP", "QENP", "SWS"}
	perPark, err := par.MapErrCtx(ctx, workers, len(parks), func(i int) ([]Table1Row, error) {
		sc, err := NewScenarioCtx(ctx, parks[i], seed)
		if err != nil {
			return nil, err
		}
		rows := []Table1Row{sc.Data.TableIStats(parks[i])}
		if sc.DryData != nil {
			rows = append(rows, sc.DryData.TableIStats(parks[i]+" dry"))
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, r := range perPark {
		rows = append(rows, r...)
	}
	return rows, nil
}

// --------------------------------------------------------------- Table II

// Table2Row is one (dataset, test-year, model) AUC entry.
type Table2Row struct {
	Park     string
	TestYear int
	Kind     ModelKind
	AUC      float64
}

// Table2Options scales the Table II sweep.
type Table2Options struct {
	// Kinds lists the model variants to run (default: all six).
	Kinds []ModelKind
	// TestYears lists calendar test years (default: the last three years of
	// the simulated history — the analogue of the paper's three test years).
	TestYears []int
	// TrainYears is the training window (paper: 3).
	TrainYears int
	// Dry selects the dry-season dataset when available.
	Dry bool
	// Train tuning.
	Thresholds int
	Members    int
	CVFolds    int
	GPMaxTrain int
	Balanced   bool
	Seed       int64
	// Workers bounds the goroutines used to fan the (test year × model
	// kind) grid out over a worker pool; each cell's training also uses this
	// count internally (par.Workers semantics: 1 is sequential, ≤ 0 means
	// GOMAXPROCS). Every cell derives its seed from its grid position, so
	// the table is identical for any worker count.
	Workers int
	// progress observes per-cell sweep completion (WithProgress). Set
	// through the Service options; observational only.
	progress ProgressFunc
}

func (o Table2Options) withDefaults() Table2Options {
	if len(o.Kinds) == 0 {
		o.Kinds = []ModelKind{SVB, DTB, GPB, SVBiW, DTBiW, GPBiW}
	}
	if o.TrainYears <= 0 {
		o.TrainYears = 3
	}
	return o
}

// lastYears returns the final n distinct years present in the dataset.
func lastYears(d *dataset.Dataset, n int) []int {
	seen := map[int]bool{}
	var years []int
	for _, st := range d.Steps {
		if !seen[st.Year] {
			seen[st.Year] = true
			years = append(years, st.Year)
		}
	}
	if len(years) > n {
		years = years[len(years)-n:]
	}
	return years
}

// RunTable2ForScenario evaluates the selected models on one scenario.
func RunTable2ForScenario(sc *Scenario, name string, opts Table2Options) ([]Table2Row, error) {
	return sansCtx(func(ctx context.Context) ([]Table2Row, error) {
		return RunTable2ForScenarioCtx(ctx, sc, name, opts)
	})
}

// RunTable2ForScenarioCtx is RunTable2ForScenario under a context: the
// (test year × model kind) sweep stops launching new train+evaluate cells
// once the context is done, drains cells in flight, and returns the
// context's error — and each cell's training observes the context too.
func RunTable2ForScenarioCtx(ctx context.Context, sc *Scenario, name string, opts Table2Options) ([]Table2Row, error) {
	o := opts.withDefaults()
	d := sc.Data
	if o.Dry {
		if sc.DryData == nil {
			return nil, fmt.Errorf("paws: scenario %s has no dry-season dataset", name)
		}
		d = sc.DryData
	}
	if len(o.TestYears) == 0 {
		// Default: the last three simulated years, the analogue of the
		// paper's three test years per park.
		o.TestYears = lastYears(d, 3)
	}
	// Stage the (year × kind) grid sequentially — splits are cheap and
	// shared within a year — then fan the independent train+evaluate cells
	// out over the worker pool. Each cell's seed depends only on its grid
	// position, so the rows are identical for any worker count.
	type cell struct {
		split dataset.Split
		year  int
		kind  ModelKind
		seed  int64
	}
	var cells []cell
	for yi, year := range o.TestYears {
		split, err := d.SplitByTestYear(year, o.TrainYears)
		if err != nil {
			return nil, err
		}
		if len(split.Train) == 0 || len(split.Test) == 0 {
			return nil, fmt.Errorf("paws: empty split for %s year %d", name, year)
		}
		for ki, kind := range o.Kinds {
			cells = append(cells, cell{split: split, year: year, kind: kind, seed: o.Seed + int64(yi*100+ki)})
		}
	}
	var done atomic.Int64
	return par.MapErrCtx(ctx, o.Workers, len(cells), func(i int) (Table2Row, error) {
		c := cells[i]
		m, err := TrainCtx(ctx, c.split.Train, TrainOptions{
			Kind:       c.kind,
			Thresholds: o.Thresholds,
			Members:    o.Members,
			CVFolds:    o.CVFolds,
			GPMaxTrain: o.GPMaxTrain,
			Balanced:   o.Balanced,
			Seed:       c.seed,
			Workers:    o.Workers,
		})
		if err != nil {
			return Table2Row{}, fmt.Errorf("paws: %s %d %v: %w", name, c.year, c.kind, err)
		}
		if o.progress != nil {
			o.progress(ProgressEvent{
				Stage:   "cell",
				Item:    fmt.Sprintf("%s/%d/%v", name, c.year, c.kind),
				Current: int(done.Add(1)),
				Total:   len(cells),
			})
		}
		return Table2Row{Park: name, TestYear: c.year, Kind: c.kind, AUC: m.AUC(c.split.Test)}, nil
	})
}

// Table2Summary aggregates rows into the iWare-E lift headline.
type Table2Summary struct {
	MeanAUCWithout float64
	MeanAUCWith    float64
	Lift           float64
}

// SummarizeTable2 computes mean AUC with and without iWare-E.
func SummarizeTable2(rows []Table2Row) Table2Summary {
	var with, without []float64
	for _, r := range rows {
		if r.Kind.IsIWare() {
			with = append(with, r.AUC)
		} else {
			without = append(without, r.AUC)
		}
	}
	s := Table2Summary{
		MeanAUCWithout: stats.Mean(without),
		MeanAUCWith:    stats.Mean(with),
	}
	s.Lift = s.MeanAUCWith - s.MeanAUCWithout
	return s
}

// ----------------------------------------------------------------- Fig 4

// Fig4Series is the positive-rate-vs-effort-percentile curve for one park.
type Fig4Series struct {
	Park        string
	Percentiles []float64
	TrainRates  []float64
	TestRates   []float64
}

// RunFig4 computes the Fig. 4 curves from a scenario's train/test split.
func RunFig4(sc *Scenario, name string, testYear, trainYears int, dry bool) (Fig4Series, error) {
	return sansCtx(func(ctx context.Context) (Fig4Series, error) {
		return RunFig4Ctx(ctx, sc, name, testYear, trainYears, dry)
	})
}

// RunFig4Ctx is RunFig4 under a context (checked once; the computation is a
// single pass over the split).
func RunFig4Ctx(ctx context.Context, sc *Scenario, name string, testYear, trainYears int, dry bool) (Fig4Series, error) {
	if err := ctxErr(ctx); err != nil {
		return Fig4Series{}, err
	}
	d := sc.Data
	if dry {
		if sc.DryData == nil {
			return Fig4Series{}, fmt.Errorf("paws: no dry dataset for %s", name)
		}
		d = sc.DryData
	}
	split, err := d.SplitByTestYear(testYear, trainYears)
	if err != nil {
		return Fig4Series{}, err
	}
	percentiles := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	return Fig4Series{
		Park:        name,
		Percentiles: percentiles,
		TrainRates:  dataset.PositiveRateByEffortPercentile(split.Train, percentiles),
		TestRates:   dataset.PositiveRateByEffortPercentile(split.Test, percentiles),
	}, nil
}

// ----------------------------------------------------------------- Fig 6

// Fig6Maps bundles the Fig. 6 rasters: historical context plus predicted
// risk and uncertainty at several planned effort levels.
type Fig6Maps struct {
	EffortLevels []float64
	// Risk[k][cell] at EffortLevels[k].
	Risk [][]float64
	// Uncertainty[k][cell] at EffortLevels[k].
	Uncertainty [][]float64
	// HistEffort and HistActivity are the 3-year context maps.
	HistEffort   []float64
	HistActivity []float64
}

// RunFig6 trains the given model kind on the scenario's train years and
// evaluates risk/uncertainty maps at the paper's effort levels.
func RunFig6(sc *Scenario, kind ModelKind, testYear, trainYears int, opts TrainOptions) (*Fig6Maps, error) {
	return sansCtx(func(ctx context.Context) (*Fig6Maps, error) {
		return RunFig6Ctx(ctx, sc, kind, testYear, trainYears, opts)
	})
}

// RunFig6Ctx is RunFig6 under a context, observed through training and
// between map-sweep chunks.
func RunFig6Ctx(ctx context.Context, sc *Scenario, kind ModelKind, testYear, trainYears int, opts TrainOptions) (*Fig6Maps, error) {
	split, err := sc.Data.SplitByTestYear(testYear, trainYears)
	if err != nil {
		return nil, err
	}
	opts.Kind = kind
	m, err := TrainCtx(ctx, split.Train, opts)
	if err != nil {
		return nil, err
	}
	testFrom, _ := sc.Data.StepsForYear(testYear)
	pm, err := NewPlannerModelCtx(ctx, m, sc.Data, testFrom-1, opts.Workers)
	if err != nil {
		return nil, err
	}
	out := &Fig6Maps{EffortLevels: []float64{0.5, 1, 2, 3}}
	for k, e := range out.EffortLevels {
		risk, unc, err := pm.MapsCtx(ctx, e)
		if err != nil {
			return nil, err
		}
		out.Risk = append(out.Risk, risk)
		out.Uncertainty = append(out.Uncertainty, unc)
		if opts.progress != nil {
			opts.progress(ProgressEvent{Stage: "map", Current: k + 1, Total: len(out.EffortLevels)})
		}
	}
	// Historical context: effort and activity summed over the train years.
	n := sc.Park.Grid.NumCells()
	out.HistEffort = make([]float64, n)
	out.HistActivity = make([]float64, n)
	for t := 0; t < testFrom; t++ {
		if sc.Data.Steps[t].Year < testYear-trainYears {
			continue
		}
		for cell := 0; cell < n; cell++ {
			out.HistEffort[cell] += sc.Data.Effort[t][cell]
			if sc.Data.Label[t][cell] {
				out.HistActivity[cell]++
			}
		}
	}
	return out, nil
}

// ----------------------------------------------------------------- Fig 7

// Fig7Result compares prediction-vs-uncertainty correlation for a GP
// weak learner against a bagged-decision-tree weak learner.
type Fig7Result struct {
	GPCorrelation float64
	DTCorrelation float64
	GPPredictions []float64
	GPVariances   []float64
	DTPredictions []float64
	DTVariances   []float64
}

// RunFig7 trains one GPB and one DTB weak learner on the scenario's training
// years and correlates predictions with uncertainty on the test points
// (paper: r ≈ −0.198 for GPs vs 0.979 for bagged trees).
func RunFig7(sc *Scenario, testYear, trainYears int, opts TrainOptions) (*Fig7Result, error) {
	return sansCtx(func(ctx context.Context) (*Fig7Result, error) {
		return RunFig7Ctx(ctx, sc, testYear, trainYears, opts)
	})
}

// RunFig7Ctx is RunFig7 under a context, observed through both probe-model
// trainings.
func RunFig7Ctx(ctx context.Context, sc *Scenario, testYear, trainYears int, opts TrainOptions) (*Fig7Result, error) {
	split, err := sc.Data.SplitByTestYear(testYear, trainYears)
	if err != nil {
		return nil, err
	}
	// The two probe models are independent; train them concurrently.
	models, err := par.MapErrCtx(ctx, opts.Workers, 2, func(i int) (*Model, error) {
		mo := opts
		mo.Kind = []ModelKind{GPB, DTB}[i]
		return TrainCtx(ctx, split.Train, mo)
	})
	if err != nil {
		return nil, err
	}
	gpm, dtm := models[0], models[1]
	res := &Fig7Result{}
	for _, p := range split.Test {
		gpp, gpv := gpm.PredictWithVariance(p.Features, p.Effort)
		res.GPPredictions = append(res.GPPredictions, gpp)
		res.GPVariances = append(res.GPVariances, gpv)
		dtp := dtm.Ensemble().PredictProba(p.Features)
		dtv := dtm.Ensemble().JackknifeVariance(p.Features)
		res.DTPredictions = append(res.DTPredictions, dtp)
		res.DTVariances = append(res.DTVariances, dtv)
	}
	res.GPCorrelation = stats.Pearson(res.GPPredictions, res.GPVariances)
	res.DTCorrelation = stats.Pearson(res.DTPredictions, res.DTVariances)
	return res, nil
}

// --------------------------------------------------------- Fig 8 / Fig 9

// PlanStudyOptions scales the planning experiments.
type PlanStudyOptions struct {
	// Posts caps the number of patrol posts (regions) used.
	Posts int
	// Radius and MaxCells bound each region.
	Radius, MaxCells int
	// T, K, Segments configure the planner.
	T        int
	K        float64
	Segments int
	// Solver picks the planning strategy (default plan.SolverAuto).
	Solver plan.SolverKind
	// Betas for the Fig. 8(a–c) sweep.
	Betas []float64
	// SegmentCounts for Fig. 8(d–f) and Fig. 9.
	SegmentCounts []int
	// TrainYears / TestYear select the model split.
	TestYear, TrainYears int
	Train                TrainOptions
	// Workers bounds the goroutines used for training, map generation and
	// the β/segment sweeps (par.Workers semantics; results identical for
	// any count). Overrides Train.Workers when that is unset.
	Workers int
}

func (o PlanStudyOptions) withDefaults() PlanStudyOptions {
	if o.Posts <= 0 {
		o.Posts = 3
	}
	if o.Radius <= 0 {
		// Regions must reach beyond the well-patrolled neighbourhood of the
		// post, where predictive uncertainty is flat, into poorly-known
		// territory — that heterogeneity is what robust planning trades on.
		o.Radius = 5
	}
	if o.MaxCells <= 0 {
		o.MaxCells = 60
	}
	if o.T <= 0 {
		o.T = 12
	}
	if o.K <= 0 {
		o.K = 2
	}
	if o.Segments <= 0 {
		o.Segments = 10
	}
	if len(o.Betas) == 0 {
		o.Betas = []float64{0.8, 0.85, 0.9, 0.95, 1.0}
	}
	if len(o.SegmentCounts) == 0 {
		o.SegmentCounts = []int{5, 10, 15, 20, 25}
	}
	if o.TestYear == 0 {
		o.TestYear = dataset.BaseYear + 5
	}
	if o.TrainYears <= 0 {
		o.TrainYears = 3
	}
	return o
}

// PlanStudy bundles a trained planner model and its per-post regions.
type PlanStudy struct {
	Scenario *Scenario
	Model    *PlannerModel
	Regions  []*plan.Region
	Config   plan.Config
	opts     PlanStudyOptions
}

// NewPlanStudy trains the planning model (GPB-iW by default) and builds the
// per-post regions.
func NewPlanStudy(sc *Scenario, opts PlanStudyOptions) (*PlanStudy, error) {
	return sansCtx(func(ctx context.Context) (*PlanStudy, error) {
		return NewPlanStudyCtx(ctx, sc, opts)
	})
}

// NewPlanStudyCtx is NewPlanStudy under a context, observed through model
// training and planner-model calibration.
func NewPlanStudyCtx(ctx context.Context, sc *Scenario, opts PlanStudyOptions) (*PlanStudy, error) {
	o := opts.withDefaults()
	split, err := sc.Data.SplitByTestYear(o.TestYear, o.TrainYears)
	if err != nil {
		return nil, err
	}
	tr := o.Train
	if tr.Kind != GPBiW && tr.Kind != DTBiW && tr.Kind != SVBiW {
		tr.Kind = GPBiW
	}
	if tr.Workers == 0 {
		tr.Workers = o.Workers
	}
	m, err := TrainCtx(ctx, split.Train, tr)
	if err != nil {
		return nil, err
	}
	testFrom, _ := sc.Data.StepsForYear(o.TestYear)
	pm, err := NewPlannerModelCtx(ctx, m, sc.Data, testFrom-1, o.Workers)
	if err != nil {
		return nil, err
	}
	var regions []*plan.Region
	for i, post := range sc.Park.Posts {
		if i >= o.Posts {
			break
		}
		r, err := plan.NewRegion(sc.Park, post, o.Radius, o.MaxCells)
		if err != nil {
			return nil, err
		}
		regions = append(regions, r)
	}
	if len(regions) == 0 {
		return nil, fmt.Errorf("paws: scenario has no patrol posts")
	}
	return &PlanStudy{
		Scenario: sc,
		Model:    pm,
		Regions:  regions,
		Config:   plan.Config{T: o.T, K: o.K, Segments: o.Segments, Solver: o.Solver, Workers: o.Workers},
		opts:     o,
	}, nil
}

// RunFig8Beta computes the Fig. 8(a–c) ratio-vs-β series.
func (ps *PlanStudy) RunFig8Beta() ([]game.RatioPoint, error) {
	return sansCtx(ps.RunFig8BetaCtx)
}

// RunFig8BetaCtx is RunFig8Beta under a context, observed between solves.
func (ps *PlanStudy) RunFig8BetaCtx(ctx context.Context) ([]game.RatioPoint, error) {
	return game.BetaSweepCtx(ctx, ps.Regions, ps.Model, ps.Config, ps.opts.Betas)
}

// RunFig8Segments computes the Fig. 8(d–f) ratio-vs-segments series at β=1.
func (ps *PlanStudy) RunFig8Segments() ([]game.RatioPoint, error) {
	return sansCtx(ps.RunFig8SegmentsCtx)
}

// RunFig8SegmentsCtx is RunFig8Segments under a context, observed between
// solves.
func (ps *PlanStudy) RunFig8SegmentsCtx(ctx context.Context) ([]game.RatioPoint, error) {
	return game.SegmentRatioSweepCtx(ctx, ps.Regions, ps.Model, ps.Config, 1.0, ps.opts.SegmentCounts)
}

// RunFig9 computes the runtime and utility-convergence series of Fig. 9.
// The paper's runtime curve measures the MILP formulation, so this study
// solves a compact region with the exact (simplex + branch-and-bound)
// solver: runtime grows with the PWL segment count while the utility
// converges.
func (ps *PlanStudy) RunFig9() ([]game.SegmentPoint, error) {
	return sansCtx(ps.RunFig9Ctx)
}

// RunFig9Ctx is RunFig9 under a context, observed between solves.
func (ps *PlanStudy) RunFig9Ctx(ctx context.Context) ([]game.SegmentPoint, error) {
	region, err := plan.NewRegion(ps.Scenario.Park, ps.Regions[0].Post, 3, 14)
	if err != nil {
		return nil, err
	}
	cfg := ps.Config
	cfg.T = 6
	cfg.Solver = plan.SolverMILP
	return game.SegmentSweepCtx(ctx, region, ps.Model, cfg, ps.opts.SegmentCounts)
}

// RunDetectionGain simulates robust (β=1) vs blind (β=0) plans against the
// scenario's ground truth and reports the detection factor — the analogue
// of the paper's "30% more snares detected" claim.
func (ps *PlanStudy) RunDetectionGain(months int, seed int64) (game.DetectionResult, error) {
	return sansCtx(func(ctx context.Context) (game.DetectionResult, error) {
		return ps.RunDetectionGainCtx(ctx, months, seed)
	})
}

// RunDetectionGainCtx is RunDetectionGain under a context, observed between
// per-region solves.
func (ps *PlanStudy) RunDetectionGainCtx(ctx context.Context, months int, seed int64) (game.DetectionResult, error) {
	agg := game.DetectionResult{}
	for i, region := range ps.Regions {
		if err := ctxErr(ctx); err != nil {
			return agg, err
		}
		cfgR := ps.Config
		cfgR.Beta = 1
		robust, err := plan.Solve(region, ps.Model, cfgR)
		if err != nil {
			return agg, err
		}
		cfgB := ps.Config
		cfgB.Beta = 0
		blind, err := plan.Solve(region, ps.Model, cfgB)
		if err != nil {
			return agg, err
		}
		r := game.SimulateDetections(region, ps.Scenario.History.Truth, robust.Effort, blind.Effort, months, seed+int64(i))
		agg.RobustDetections += r.RobustDetections
		agg.BlindDetections += r.BlindDetections
	}
	switch {
	case agg.BlindDetections > 0:
		agg.Factor = float64(agg.RobustDetections) / float64(agg.BlindDetections)
	case agg.RobustDetections > 0:
		agg.Factor = float64(agg.RobustDetections)
	default:
		agg.Factor = 1
	}
	return agg, nil
}

// ------------------------------------------------------- Table III / Fig 10

// Table3Trial describes one field-test trial.
type Table3Trial struct {
	Name   string
	Park   string
	Result *field.Result
}

// Table3Options configures the field-test reproduction.
type Table3Options struct {
	// MFNP/SWS protocols mirror Section VII: 2×2 blocks in MFNP, 3×3 in SWS,
	// 50th-percentile history filter, hidden risk groups.
	PerGroup   int
	TrainYears int
	// EffortPerCellMonth is the ranger effort intensity during the trial
	// (default 2.5 km; the SWS trials deployed 72 rangers on 15 blocks, a
	// much higher intensity).
	EffortPerCellMonth float64
	Train              TrainOptions
	Seed               int64
	// Workers bounds the goroutines used for training and risk-map
	// generation (par.Workers semantics; results identical for any count).
	// Overrides Train.Workers when that is unset.
	Workers int
}

// RunTable3ForScenario runs two trials on one scenario (matching the two
// MFNP trials and two SWS trials of Table III).
func RunTable3ForScenario(sc *Scenario, name string, blockSize int, trialMonths []int, opts Table3Options) ([]Table3Trial, error) {
	return sansCtx(func(ctx context.Context) ([]Table3Trial, error) {
		return RunTable3ForScenarioCtx(ctx, sc, name, blockSize, trialMonths, opts)
	})
}

// RunTable3ForScenarioCtx is RunTable3ForScenario under a context, observed
// through training, risk-map generation and between trials.
func RunTable3ForScenarioCtx(ctx context.Context, sc *Scenario, name string, blockSize int, trialMonths []int, opts Table3Options) ([]Table3Trial, error) {
	if opts.PerGroup <= 0 {
		opts.PerGroup = 5
	}
	if opts.TrainYears <= 0 {
		opts.TrainYears = 3
	}
	if opts.EffortPerCellMonth <= 0 {
		opts.EffortPerCellMonth = 2.5
	}
	d := sc.Data
	// Train on everything before the final simulated year; the trial months
	// run during it.
	testYear := d.Steps[len(d.Steps)-1].Year
	split, err := d.SplitByTestYear(testYear, opts.TrainYears)
	if err != nil {
		return nil, err
	}
	tr := opts.Train
	if tr.Kind != DTBiW && tr.Kind != GPBiW && tr.Kind != SVBiW {
		// Paper: DTB-iW scores for the MFNP field test, GPB-iW for SWS.
		tr.Kind = DTBiW
		if sc.Park.Config.Seasonal {
			tr.Kind = GPBiW
		}
	}
	if tr.Workers == 0 {
		tr.Workers = opts.Workers
	}
	m, err := TrainCtx(ctx, split.Train, tr)
	if err != nil {
		return nil, err
	}
	testFrom, _ := d.StepsForYear(testYear)
	pm, err := NewPlannerModelCtx(ctx, m, d, testFrom-1, opts.Workers)
	if err != nil {
		return nil, err
	}
	risk, err := pm.RiskMapCtx(ctx, NominalEffort(d))
	if err != nil {
		return nil, err
	}
	// History: total effort over the training window.
	n := sc.Park.Grid.NumCells()
	history := make([]float64, n)
	for t := 0; t < testFrom; t++ {
		for cell := 0; cell < n; cell++ {
			history[cell] += d.Effort[t][cell]
		}
	}
	var trials []Table3Trial
	startMonth := d.Steps[testFrom].Months[0]
	for i, months := range trialMonths {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		proto := field.Protocol{
			BlockSize:            blockSize,
			PerGroup:             opts.PerGroup,
			HistoryPercentileCap: 50,
			Months:               months,
			StartMonth:           startMonth,
			EffortPerCellMonth:   opts.EffortPerCellMonth,
			IntuitionBias:        0.4,
			Seed:                 opts.Seed + int64(i*977),
		}
		res, err := field.Run(sc.Park, sc.History.Truth, risk, history, proto)
		if err != nil {
			return nil, err
		}
		trials = append(trials, Table3Trial{
			Name:   fmt.Sprintf("%s trial %d", name, i+1),
			Park:   name,
			Result: res,
		})
		if opts.Train.progress != nil {
			opts.Train.progress(ProgressEvent{Stage: "trial", Item: name, Current: i + 1, Total: len(trialMonths)})
		}
		startMonth += months
	}
	return trials, nil
}

// ------------------------------------------------------------ ASCII output

// RasterASCII renders a per-cell slice as an ASCII heatmap over the park.
func RasterASCII(park *geo.Park, values []float64) string {
	r := geo.NewRaster(park.Grid)
	copy(r.V, values)
	return r.ASCII()
}

// FormatDuration rounds a duration for table output.
func FormatDuration(d time.Duration) string { return d.Round(time.Millisecond).String() }

// SortTable2Rows orders rows by park, year, then model kind for stable
// printing.
func SortTable2Rows(rows []Table2Row) {
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].Park != rows[b].Park {
			return rows[a].Park < rows[b].Park
		}
		if rows[a].TestYear != rows[b].TestYear {
			return rows[a].TestYear < rows[b].TestYear
		}
		return rows[a].Kind < rows[b].Kind
	})
}
