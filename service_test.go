package paws

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// serviceFixture trains a quick model and registers it on a fresh Service.
func serviceFixture(t testing.TB, kind ModelKind) (*Service, *Scenario) {
	t.Helper()
	sc := smallScenario(t, 51, false)
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(WithWorkers(2))
	m, err := svc.Train(context.Background(), split.Train,
		WithKind(kind), WithThresholds(4), WithEnsembleSize(4), WithGPMaxTrain(60), WithTreeDepth(6), WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	testFrom, _ := sc.Data.StepsForYear(year)
	if _, err := svc.AddModel(context.Background(), "default", m, sc.Data, testFrom-1); err != nil {
		t.Fatal(err)
	}
	return svc, sc
}

// TestServiceTrainMatchesLegacyTrain checks the functional-options path
// lowers to exactly the legacy TrainOptions path: identical predictions.
func TestServiceTrainMatchesLegacyTrain(t *testing.T) {
	sc := smallScenario(t, 53, false)
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(WithSeed(17), WithThresholds(4), WithEnsembleSize(4), WithGPMaxTrain(60), WithTreeDepth(6))
	for _, kind := range []ModelKind{DTB, GPBiW} {
		newAPI, err := svc.Train(context.Background(), split.Train, WithKind(kind))
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := Train(split.Train, quickTrainOpts(kind, 17))
		if err != nil {
			t.Fatal(err)
		}
		assertSameFloats(t, kind.String(),
			newAPI.PredictPoints(split.Test), legacy.PredictPoints(split.Test))
	}
}

// TestTrainCtxCanceled checks an already-dead context aborts training
// before any work and surfaces the context error unwrapped.
func TestTrainCtxCanceled(t *testing.T) {
	sc := smallScenario(t, 55, false)
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainCtx(ctx, split.Train, quickTrainOpts(GPBiW, 17)); !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestTrainCtxDeadlineMidTraining checks a deadline expiring during the
// ensemble fit aborts mid-sweep with context.DeadlineExceeded.
func TestTrainCtxDeadlineMidTraining(t *testing.T) {
	sc := smallScenario(t, 57, false)
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	// GPB-iW with a CV pass takes seconds; 5ms cannot finish it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	opts := quickTrainOpts(GPBiW, 17)
	opts.CVFolds = 3
	start := time.Now()
	_, err = TrainCtx(ctx, split.Train, opts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TrainCtx past deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("training ran %v after a 5ms deadline (cancellation not observed mid-sweep)", elapsed)
	}
}

// TestRiskMapCtxDeadlineAbortsSweepEarly is the serving-path acceptance
// test: a park-wide risk-map sweep under an expired deadline must abort
// early with context.DeadlineExceeded instead of evaluating every cell.
func TestRiskMapCtxDeadlineAbortsSweepEarly(t *testing.T) {
	svc, _ := serviceFixture(t, GPBiW)
	sm, _ := svc.Served("default")

	// Expired before the sweep starts: nothing may be evaluated.
	dead, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := svc.RiskMaps(dead, "default", 1.5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RiskMaps past deadline: err = %v, want context.DeadlineExceeded", err)
	}

	// Expiring mid-sweep: the partial memo must be strictly smaller than the
	// park — the sweep stopped early — and the error must still surface.
	short, cancel2 := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel2()
	if _, _, err := svc.RiskMaps(short, "default", 2.5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RiskMaps with 2ms budget: err = %v, want context.DeadlineExceeded", err)
	}
	evaluated := 0
	for cell := range sm.pm.memo {
		if _, ok := sm.pm.memo[cell].get(2.5); ok {
			evaluated++
		}
	}
	if n := len(sm.pm.memo); evaluated >= n {
		t.Fatalf("all %d cells evaluated despite the 2ms deadline (sweep did not abort early)", n)
	}

	// A live context still produces the full maps afterwards.
	risk, unc, err := svc.RiskMaps(context.Background(), "default", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(risk) != len(sm.pm.memo) || len(unc) != len(risk) {
		t.Fatalf("map sizes %d/%d, want %d", len(risk), len(unc), len(sm.pm.memo))
	}
}

// TestServicePredictConcurrentDeterministic floods one served model with
// parallel Predict calls (run under -race in CI) and checks every response
// is byte-identical to the sequential answer.
func TestServicePredictConcurrentDeterministic(t *testing.T) {
	svc, sc := serviceFixture(t, GPBiW)
	year := sc.Data.Steps[len(sc.Data.Steps)-1].Year
	split, err := sc.Data.SplitByTestYear(year, 3)
	if err != nil {
		t.Fatal(err)
	}
	X := make([][]float64, 0, 120)
	for _, p := range split.Test {
		X = append(X, append([]float64(nil), p.Features...))
		if len(X) == 120 {
			break
		}
	}
	efforts := []float64{0.5, 1.5, 3}
	want := map[float64][]float64{}
	for _, e := range efforts {
		w, err := svc.Predict(context.Background(), "default", X, e)
		if err != nil {
			t.Fatal(err)
		}
		want[e] = w
	}
	const goroutines = 12
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := efforts[g%len(efforts)]
			got, err := svc.Predict(context.Background(), "default", X, e)
			if err != nil {
				errCh <- err
				return
			}
			for i := range got {
				if got[i] != want[e][i] {
					errCh <- errors.New("concurrent Predict diverged from sequential answer")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestServicePredictValidation checks unknown models and malformed rows are
// rejected before any model work.
func TestServicePredictValidation(t *testing.T) {
	svc, _ := serviceFixture(t, DTB)
	if _, err := svc.Predict(context.Background(), "nope", nil, 1); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model: err = %v, want ErrUnknownModel", err)
	}
	if _, err := svc.Predict(context.Background(), "default", [][]float64{{1, 2}}, 1); err == nil {
		t.Fatal("short feature row accepted")
	}
	if _, err := svc.PredictCells(context.Background(), "default", []int{-1}, 1); err == nil {
		t.Fatal("negative cell accepted")
	}
}

// TestServicePredictCellsMatchesRiskMap checks the by-cell serving path is
// consistent with the park-wide sweep.
func TestServicePredictCellsMatchesRiskMap(t *testing.T) {
	svc, _ := serviceFixture(t, DTBiW)
	risk, _, err := svc.RiskMaps(context.Background(), "default", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	cells := []int{0, 7, 42, len(risk) - 1}
	got, err := svc.PredictCells(context.Background(), "default", cells, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		if got[i] != risk[c] {
			t.Fatalf("cell %d: PredictCells %v != RiskMap %v", c, got[i], risk[c])
		}
	}
}

// TestServicePlan checks the planning endpoint returns a feasible artifact.
func TestServicePlan(t *testing.T) {
	svc, _ := serviceFixture(t, GPBiW)
	res, err := svc.Plan(context.Background(), "default", 0, 0.9,
		WithRegionShape(2, 14), WithPlanHorizon(5, 2, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 || len(res.Effort) != len(res.Cells) {
		t.Fatalf("plan shape: %d cells, %d efforts", len(res.Cells), len(res.Effort))
	}
	if len(res.Routes) == 0 {
		t.Fatal("plan returned no routes")
	}
	for _, r := range res.Routes {
		if len(r) != 5+1 {
			t.Fatalf("route length %d, want T+1 = 6", len(r))
		}
		if r[0] != res.Cells[0] || r[len(r)-1] != res.Cells[0] {
			t.Fatal("route does not start and end at the post")
		}
	}
	if _, err := svc.Plan(context.Background(), "default", 99, 0.9); err == nil {
		t.Fatal("out-of-range post accepted")
	}
	if _, err := svc.Plan(context.Background(), "default", 0, 2); err == nil {
		t.Fatal("beta > 1 accepted")
	}
}
