package paws

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md §4), plus ablations of the design choices DESIGN.md
// §5 calls out. Benchmarks run on ScaleSmall parks so a full -bench=. sweep
// stays tractable; cmd/pawstables and cmd/pawsfigs run the full presets.
// Each benchmark reports the headline metric via b.ReportMetric so the
// regenerated numbers are visible in benchmark output.

import (
	"context"
	"fmt"
	"testing"

	"paws/internal/dataset"
	"paws/internal/job"
	"paws/internal/plan"
	"paws/internal/stats"
)

// benchScenario caches scenarios across benchmark iterations.
var benchScenarios = map[string]*Scenario{}

func benchScenario(b *testing.B, name string) *Scenario {
	b.Helper()
	if sc, ok := benchScenarios[name]; ok {
		return sc
	}
	sc, err := ScenarioAt(name, ScaleSmall, 7)
	if err != nil {
		b.Fatal(err)
	}
	benchScenarios[name] = sc
	return sc
}

func benchLastYear(sc *Scenario) int {
	return sc.Data.Steps[len(sc.Data.Steps)-1].Year
}

// BenchmarkTable1DatasetStats regenerates Table I: dataset statistics for
// the three parks (small-scale presets).
func BenchmarkTable1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"MFNP", "QENP", "SWS"} {
			sc := benchScenario(b, name)
			s := sc.Data.TableIStats(name)
			if s.NumPoints == 0 {
				b.Fatal("empty dataset")
			}
			if i == 0 {
				b.Logf("%s: %d cells, %d pts, %.2f%% pos, %.2f km/cell",
					name, s.NumCells, s.NumPoints, s.PctPositive, s.AvgEffortKM)
			}
		}
	}
}

// benchTable2 runs one Table II cell (park × model kind) and reports AUC.
func benchTable2(b *testing.B, park string, kind ModelKind) {
	sc := benchScenario(b, park)
	var auc float64
	for i := 0; i < b.N; i++ {
		rows, err := RunTable2ForScenario(sc, park, Table2Options{
			Kinds:      []ModelKind{kind},
			TestYears:  []int{benchLastYear(sc)},
			Thresholds: 5,
			Members:    5,
			GPMaxTrain: 80,
			Balanced:   park == "SWS",
			Seed:       int64(11 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		auc = rows[0].AUC
	}
	b.ReportMetric(auc, "AUC")
}

// BenchmarkTable2 regenerates Table II, one sub-benchmark per (park, model).
func BenchmarkTable2(b *testing.B) {
	for _, park := range []string{"MFNP", "QENP", "SWS"} {
		for _, kind := range []ModelKind{SVB, DTB, GPB, SVBiW, DTBiW, GPBiW} {
			b.Run(fmt.Sprintf("%s/%v", park, kind), func(b *testing.B) {
				benchTable2(b, park, kind)
			})
		}
	}
}

// BenchmarkTable3FieldTests regenerates Table III / Fig 10: two field-test
// trials per park with hidden risk groups and chi-squared analysis.
func BenchmarkTable3FieldTests(b *testing.B) {
	sc := benchScenario(b, "MFNP")
	var pHigh, pLow float64
	for i := 0; i < b.N; i++ {
		trials, err := RunTable3ForScenario(sc, "MFNP", 2, []int{2, 3}, Table3Options{
			PerGroup: 4,
			Train:    TrainOptions{Kind: DTBiW, Thresholds: 5, Members: 5, Seed: int64(13 + i)},
			Seed:     int64(17 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		g := trials[0].Result.Groups
		pHigh, pLow = g[0].ObsPerCell, g[2].ObsPerCell
	}
	b.ReportMetric(pHigh, "high-obs/cell")
	b.ReportMetric(pLow, "low-obs/cell")
}

// BenchmarkFig4PositiveRate regenerates Fig 4: positive-label percentage as
// a function of the patrol-effort percentile threshold.
func BenchmarkFig4PositiveRate(b *testing.B) {
	sc := benchScenario(b, "MFNP")
	var sl float64
	for i := 0; i < b.N; i++ {
		s, err := RunFig4(sc, "MFNP", benchLastYear(sc), 3, false)
		if err != nil {
			b.Fatal(err)
		}
		sl = s.TrainRates[5] - s.TrainRates[0]
	}
	b.ReportMetric(sl, "rate-rise-pct")
}

// BenchmarkFig6RiskMaps regenerates Fig 6: GPB-iW risk and uncertainty maps
// at four effort levels plus historical context maps.
func BenchmarkFig6RiskMaps(b *testing.B) {
	sc := benchScenario(b, "MFNP")
	for i := 0; i < b.N; i++ {
		maps, err := RunFig6(sc, GPBiW, benchLastYear(sc), 3, TrainOptions{
			Thresholds: 5, Members: 4, GPMaxTrain: 60, Seed: int64(19 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(maps.Risk) != 4 {
			b.Fatal("wrong number of effort levels")
		}
	}
}

// BenchmarkFig7UncertaintyCorrelation regenerates Fig 7: Pearson correlation
// of prediction with uncertainty for GP vs bagged decision trees.
func BenchmarkFig7UncertaintyCorrelation(b *testing.B) {
	sc := benchScenario(b, "MFNP")
	var gpr, dtr float64
	for i := 0; i < b.N; i++ {
		res, err := RunFig7(sc, benchLastYear(sc), 3, TrainOptions{
			Members: 4, GPMaxTrain: 60, Seed: int64(23 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		gpr, dtr = res.GPCorrelation, res.DTCorrelation
	}
	b.ReportMetric(gpr, "GP-r")
	b.ReportMetric(dtr, "DT-r")
}

// benchPlanStudy builds (and caches) a plan study for the planning figures.
var cachedPlanStudy *PlanStudy

func benchPlanStudy(b *testing.B) *PlanStudy {
	b.Helper()
	if cachedPlanStudy != nil {
		return cachedPlanStudy
	}
	sc := benchScenario(b, "MFNP")
	ps, err := NewPlanStudy(sc, PlanStudyOptions{
		Posts:         2,
		Radius:        5,
		MaxCells:      48,
		T:             10,
		K:             2,
		Segments:      6,
		Betas:         []float64{0.8, 1.0},
		SegmentCounts: []int{4, 8},
		TestYear:      benchLastYear(sc),
		Solver:        plan.SolverFrankWolfe,
		Train:         TrainOptions{Thresholds: 5, Members: 4, GPMaxTrain: 60, Seed: 29},
	})
	if err != nil {
		b.Fatal(err)
	}
	cachedPlanStudy = ps
	return ps
}

// BenchmarkFig8RobustGain regenerates Fig 8(a–c): the solution-quality ratio
// Uβ(Cβ)/Uβ(C0) across β, averaged over patrol posts.
func BenchmarkFig8RobustGain(b *testing.B) {
	ps := benchPlanStudy(b)
	var avg float64
	for i := 0; i < b.N; i++ {
		pts, err := ps.RunFig8Beta()
		if err != nil {
			b.Fatal(err)
		}
		avg = pts[len(pts)-1].Avg
	}
	b.ReportMetric(avg, "ratio@beta=1")
}

// BenchmarkFig8SegmentRatio regenerates Fig 8(d–f): the ratio as a function
// of PWL segment count at β=1.
func BenchmarkFig8SegmentRatio(b *testing.B) {
	ps := benchPlanStudy(b)
	var avg float64
	for i := 0; i < b.N; i++ {
		pts, err := ps.RunFig8Segments()
		if err != nil {
			b.Fatal(err)
		}
		avg = pts[len(pts)-1].Avg
	}
	b.ReportMetric(avg, "ratio@maxseg")
}

// BenchmarkFig9PlannerRuntime regenerates Fig 9: planner runtime and robust
// utility as the PWL segment count grows.
func BenchmarkFig9PlannerRuntime(b *testing.B) {
	ps := benchPlanStudy(b)
	var util float64
	for i := 0; i < b.N; i++ {
		pts, err := ps.RunFig9()
		if err != nil {
			b.Fatal(err)
		}
		util = pts[len(pts)-1].Utility
	}
	b.ReportMetric(util, "utility@maxseg")
}

// BenchmarkDetectionGain regenerates the headline "30% more snares" claim:
// robust vs uncertainty-blind plans simulated against the true process.
func BenchmarkDetectionGain(b *testing.B) {
	ps := benchPlanStudy(b)
	var factor float64
	for i := 0; i < b.N; i++ {
		gain, err := ps.RunDetectionGain(24, int64(31+i))
		if err != nil {
			b.Fatal(err)
		}
		factor = gain.Factor
	}
	b.ReportMetric(factor, "robust/blind")
}

// --------------------------------------------------------------- Ablations

// BenchmarkAblationThresholds compares percentile-spaced iWare-E thresholds
// (the paper's enhancement) against fixed-kilometre spacing.
func BenchmarkAblationThresholds(b *testing.B) {
	sc := benchScenario(b, "MFNP")
	split, err := sc.Data.SplitByTestYear(benchLastYear(sc), 3)
	if err != nil {
		b.Fatal(err)
	}
	var aucPct, aucFixed float64
	for i := 0; i < b.N; i++ {
		// Percentile ladder (library default).
		m1, err := Train(split.Train, TrainOptions{
			Kind: DTBiW, Thresholds: 5, Members: 5, Seed: int64(37 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		aucPct = m1.AUC(split.Test)
		// Fixed-km ladder, emulating the original iWare-E grid.
		m2, err := TrainWithThresholds(split.Train, []float64{0, 1.5, 3, 4.5, 6}, TrainOptions{
			Kind: DTBiW, Members: 5, Seed: int64(37 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		aucFixed = m2.AUC(split.Test)
	}
	b.ReportMetric(aucPct, "AUC-percentile")
	b.ReportMetric(aucFixed, "AUC-fixed-km")
}

// BenchmarkAblationWeights compares CV-optimized iWare-E classifier weights
// (the paper's enhancement) against uniform qualified weights.
func BenchmarkAblationWeights(b *testing.B) {
	sc := benchScenario(b, "MFNP")
	split, err := sc.Data.SplitByTestYear(benchLastYear(sc), 3)
	if err != nil {
		b.Fatal(err)
	}
	var aucOpt, aucUni float64
	for i := 0; i < b.N; i++ {
		mo, err := Train(split.Train, TrainOptions{
			Kind: DTBiW, Thresholds: 5, Members: 5, CVFolds: 3, Seed: int64(41 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		aucOpt = mo.AUC(split.Test)
		mu, err := Train(split.Train, TrainOptions{
			Kind: DTBiW, Thresholds: 5, Members: 5, Seed: int64(41 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		aucUni = mu.AUC(split.Test)
	}
	b.ReportMetric(aucOpt, "AUC-optimized")
	b.ReportMetric(aucUni, "AUC-uniform")
}

// BenchmarkAblationBalancedBagging compares balanced vs plain bagging on the
// most imbalanced park (SWS), the Section V-A enhancement.
func BenchmarkAblationBalancedBagging(b *testing.B) {
	sc := benchScenario(b, "SWS")
	split, err := sc.Data.SplitByTestYear(benchLastYear(sc), 3)
	if err != nil {
		b.Fatal(err)
	}
	var aucBal, aucPlain float64
	for i := 0; i < b.N; i++ {
		mb, err := Train(split.Train, TrainOptions{
			Kind: DTB, Members: 6, Balanced: true, Seed: int64(43 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		aucBal = mb.AUC(split.Test)
		mp, err := Train(split.Train, TrainOptions{
			Kind: DTB, Members: 6, Seed: int64(43 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		aucPlain = mp.AUC(split.Test)
	}
	b.ReportMetric(aucBal, "AUC-balanced")
	b.ReportMetric(aucPlain, "AUC-plain")
}

// BenchmarkSubstrateGP measures a single GP classifier fit+predict cycle —
// the dominant training cost of GPB-iW.
func BenchmarkSubstrateGP(b *testing.B) {
	sc := benchScenario(b, "MFNP")
	split, err := sc.Data.SplitByTestYear(benchLastYear(sc), 3)
	if err != nil {
		b.Fatal(err)
	}
	var auc float64
	for i := 0; i < b.N; i++ {
		m, err := Train(split.Train, TrainOptions{Kind: GPB, Members: 1, GPMaxTrain: 100, Seed: int64(47 + i)})
		if err != nil {
			b.Fatal(err)
		}
		auc = m.AUC(split.Test)
	}
	b.ReportMetric(auc, "AUC")
}

// BenchmarkSubstrateEffortRebuild measures the waypoint→effort trajectory
// rasterization, the hot loop of dataset construction.
func BenchmarkSubstrateEffortRebuild(b *testing.B) {
	sc := benchScenario(b, "QENP")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := dataset.Build(sc.History, dataset.StandardConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Steps) == 0 {
			b.Fatal("no steps")
		}
	}
}

// BenchmarkChiSquared measures the field-test significance test.
func BenchmarkChiSquared(b *testing.B) {
	table := [][]float64{{14, 28}, {5, 35}, {0, 36}}
	var p float64
	for i := 0; i < b.N; i++ {
		res, err := stats.ChiSquaredTest(table)
		if err != nil {
			b.Fatal(err)
		}
		p = res.PValue
	}
	b.ReportMetric(p, "p-value")
}

// ------------------------------------------------------- Parallel layer

// The benchmarks below size the worker pool to GOMAXPROCS (Workers: 0), so
// running them with `-cpu 1,4` compares sequential against 4-way parallel
// wall-clock directly — e.g.
//
//	go test -bench 'EnsembleTrain|RiskMapGen|Table2Sweep' -cpu 1,4
//
// Outputs are byte-identical across -cpu values (see determinism_test.go);
// only the wall-clock changes.

// BenchmarkEnsembleTrain measures one GPB-iW training run — the paper's
// preferred model and the most expensive Table II cell — with member and
// ladder fits fanned out over the worker pool.
func BenchmarkEnsembleTrain(b *testing.B) {
	sc := benchScenario(b, "MFNP")
	split, err := sc.Data.SplitByTestYear(benchLastYear(sc), 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(split.Train, TrainOptions{
			Kind: GPBiW, Thresholds: 5, Members: 5, GPMaxTrain: 80, Seed: 51, Workers: 0,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRiskMapGen measures full-park risk + uncertainty map generation
// through the batch prediction API. A fresh PlannerModel per iteration keeps
// the memo cold so the map evaluation is actually measured.
func BenchmarkRiskMapGen(b *testing.B) {
	sc := benchScenario(b, "MFNP")
	split, err := sc.Data.SplitByTestYear(benchLastYear(sc), 3)
	if err != nil {
		b.Fatal(err)
	}
	m, err := Train(split.Train, TrainOptions{
		Kind: GPBiW, Thresholds: 5, Members: 5, GPMaxTrain: 80, Seed: 53, Workers: 0,
	})
	if err != nil {
		b.Fatal(err)
	}
	testFrom, _ := sc.Data.StepsForYear(benchLastYear(sc))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm, err := NewPlannerModel(m, sc.Data, testFrom-1)
		if err != nil {
			b.Fatal(err)
		}
		if risk := pm.RiskMap(2); len(risk) == 0 {
			b.Fatal("empty risk map")
		}
		if unc := pm.UncertaintyMap(2); len(unc) == 0 {
			b.Fatal("empty uncertainty map")
		}
	}
}

// BenchmarkTable2Sweep measures the whole six-model Table II column for one
// park fanned out over the worker pool — the multi-model sweep the parallel
// layer is built for.
func BenchmarkTable2Sweep(b *testing.B) {
	sc := benchScenario(b, "MFNP")
	var auc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := RunTable2ForScenario(sc, "MFNP", Table2Options{
			TestYears:  []int{benchLastYear(sc)},
			Thresholds: 5,
			Members:    5,
			GPMaxTrain: 80,
			Seed:       55,
			Workers:    0,
		})
		if err != nil {
			b.Fatal(err)
		}
		auc = rows[len(rows)-1].AUC
	}
	b.ReportMetric(auc, "AUC-last")
}

// BenchmarkSimSeason measures one closed-loop simulation season of the paws
// policy — bootstrap the history, rebuild the dataset, retrain DTB-iW, plan
// the risk-targeted allocation plus Frank-Wolfe routes, and execute three
// months against the adaptive attacker. This is the unit of work
// Service.Simulate scales by (seasons × policies × parks). Results are
// recorded in BENCH_sim.json.
func BenchmarkSimSeason(b *testing.B) {
	svc := NewService(WithWorkers(0), WithSeed(7), WithScale(ScaleSmall))
	var detections int
	for i := 0; i < b.N; i++ {
		rep, err := svc.Simulate(context.Background(), SimConfig{
			Park:     "MFNP",
			Seasons:  1,
			Policies: []string{"paws"},
		})
		if err != nil {
			b.Fatal(err)
		}
		detections = rep.Policies[0].Detections
	}
	b.ReportMetric(float64(detections), "detections")
}

// BenchmarkServePredict measures the /v1/predict serving path: the batched
// Service.Predict (chunked through the model's batch fast path, as the HTTP
// endpoint runs it) against the naive one-point-at-a-time loop a client
// would otherwise issue. Results are recorded in BENCH_serve.json.
func BenchmarkServePredict(b *testing.B) {
	sc := benchScenario(b, "MFNP")
	split, err := sc.Data.SplitByTestYear(benchLastYear(sc), 3)
	if err != nil {
		b.Fatal(err)
	}
	svc := NewService(WithWorkers(0), WithSeed(57), WithThresholds(5), WithEnsembleSize(5), WithGPMaxTrain(80))
	ctx := context.Background()
	m, err := svc.Train(ctx, split.Train, WithKind(GPBiW))
	if err != nil {
		b.Fatal(err)
	}
	testFrom, _ := sc.Data.StepsForYear(benchLastYear(sc))
	if _, err := svc.AddModel(ctx, "bench", m, sc.Data, testFrom-1); err != nil {
		b.Fatal(err)
	}
	X := make([][]float64, len(split.Test))
	for i, p := range split.Test {
		X[i] = p.Features
	}
	rows := float64(len(X))
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := svc.Predict(ctx, "bench", X, 1.5)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != len(X) {
				b.Fatal("short response")
			}
		}
		b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("perpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range X {
				if p := m.PredictForEffort(x, 1.5); p < 0 || p > 1 {
					b.Fatal("probability out of range")
				}
			}
		}
		b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkJobOverhead measures what the async job layer (internal/job)
// adds on top of a direct call: the submit → wait → result → remove round
// trip of a one-shot job (the exact path synchronous /v1/simulate takes
// through Manager.Run) against invoking the same function inline. The
// workload is a small fixed compute so the numbers isolate the job
// machinery itself. Results are recorded in BENCH_jobs.json.
func BenchmarkJobOverhead(b *testing.B) {
	work := func() float64 {
		var s float64
		for i := 0; i < 4096; i++ {
			s += float64(i%97) * 1.0000001
		}
		return s
	}
	want := work()
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if work() != want {
				b.Fatal("diverged")
			}
		}
	})
	b.Run("job", func(b *testing.B) {
		m := job.NewManager(job.Config{Workers: 1})
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			res, err := m.Run(ctx, "bench", func(ctx context.Context, publish func(job.Event)) (any, error) {
				return work(), nil
			})
			if err != nil || res.(float64) != want {
				b.Fatalf("job run: %v, %v", res, err)
			}
		}
	})
}

// BenchmarkCampaignCell measures one campaign grid cell end to end through
// Service.Campaign — a single (park, seed, seasons) closed-loop comparison
// of the paws policy against uniform on a small procedural park, plus the
// campaign layer's grid bookkeeping, job fan-out and paired aggregation.
// This is the unit of work campaigns scale by (parks × seeds × season
// counts); results are recorded in BENCH_campaign.json.
func BenchmarkCampaignCell(b *testing.B) {
	svc := NewService(WithWorkers(0), WithScale(ScaleSmall))
	var mean float64
	for i := 0; i < b.N; i++ {
		rep, err := svc.Campaign(context.Background(), CampaignConfig{
			Parks:        []string{"rand:16"},
			Policies:     []string{"paws", "uniform"},
			Seeds:        []int64{1},
			SeasonCounts: []int{1},
		})
		if err != nil {
			b.Fatal(err)
		}
		mean = rep.Summaries[0].Deltas[0].Mean
	}
	b.ReportMetric(mean, "mean-delta")
}
