module paws

go 1.24
