package paws_test

// Scale benchmarks and smoke tests for the columnar data path: procedural
// parks at 10^4, 10^5 and 10^6 cells (rand:7@<cells>) through the full
// pipeline — dataset build, training, risk-map generation and /v1/plan.
// Results are pinned in BENCH_scale.json.
//
// The benchmarks only run under -bench (tier-1 `go test ./...` never pays
// for a million-cell fixture); the smoke/end-to-end tests are opt-in via
// environment variables so CI invokes them deliberately with a wall budget
// (scripts/bench_scale_smoke.sh):
//
//	PAWS_SCALE_SMOKE=1  go test -run TestScaleSmoke -count=1 .
//	PAWS_SCALE_E2E=1e6  go test -run TestScalePlanEndToEnd -count=1 -timeout 30m .
//
// This file lives in package paws_test (not paws) so it can drive the real
// HTTP layer: internal/serve imports paws, so an in-package test would be an
// import cycle.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"paws"
	"paws/internal/dataset"
	"paws/internal/geo"
	"paws/internal/poach"
	"paws/internal/serve"
)

// scaleMonths bounds the simulated history per park size so fixture
// preparation stays proportionate: the benchmarks measure per-cell
// throughput, which is independent of history length.
func scaleMonths(cells int) int {
	switch {
	case cells >= 1_000_000:
		return 12
	case cells >= 100_000:
		return 24
	default:
		return 60
	}
}

// scaleFixture is one prepared park size: scenario, trained model, and the
// training points it was fitted on.
type scaleFixture struct {
	sc  *paws.Scenario
	pts []dataset.Point
	m   *paws.Model
}

var (
	scaleMu    sync.Mutex
	scaleCache = map[int]*scaleFixture{}
)

// scaleFixtureFor builds (once per process) the rand:7@cells scenario and a
// DTB-iW model sized for throughput benchmarking.
func scaleFixtureFor(tb testing.TB, cells int) *scaleFixture {
	tb.Helper()
	scaleMu.Lock()
	defer scaleMu.Unlock()
	if f, ok := scaleCache[cells]; ok {
		return f
	}
	parkCfg := geo.RandomConfigSized(7, cells)
	simCfg := poach.RandomSim(parkCfg, 8)
	simCfg.Months = scaleMonths(cells)
	sc, err := paws.NewCustomScenario(parkCfg, simCfg)
	if err != nil {
		tb.Fatalf("scenario rand:7@%d: %v", cells, err)
	}
	pts := sc.Data.AllPoints()
	m, err := paws.Train(pts, paws.TrainOptions{
		Kind: paws.DTBiW, Thresholds: 5, Members: 5, Seed: 53, Workers: 0,
	})
	if err != nil {
		tb.Fatalf("train at %d cells: %v", cells, err)
	}
	f := &scaleFixture{sc: sc, pts: pts, m: m}
	scaleCache[cells] = f
	return f
}

var scaleSizes = []struct {
	name  string
	cells int
}{
	{"cells=1e4", 10_000},
	{"cells=1e5", 100_000},
	{"cells=1e6", 1_000_000},
}

// perOpCells reports cells-per-second throughput for a benchmark whose op
// touches every park cell once.
func perOpCells(b *testing.B, cells int) {
	secPerOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(cells)/secPerOp, "cells/s")
}

// BenchmarkScaleBuild measures chunked streaming dataset assembly: history →
// flat T×N effort/label rasters → contiguous feature matrix.
func BenchmarkScaleBuild(b *testing.B) {
	for _, sz := range scaleSizes {
		b.Run(sz.name, func(b *testing.B) {
			f := scaleFixtureFor(b, sz.cells)
			steps := len(f.sc.Data.Steps)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := dataset.Build(f.sc.History, dataset.StandardConfig())
				if err != nil {
					b.Fatal(err)
				}
				if len(d.Steps) != steps {
					b.Fatalf("steps %d want %d", len(d.Steps), steps)
				}
			}
			secPerOp := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(sz.cells)*float64(steps)/secPerOp, "cellsteps/s")
		})
	}
}

// BenchmarkScaleTrain measures DTB-iW training (5 thresholds × 5 members)
// over the flat feature matrix of each park size.
func BenchmarkScaleTrain(b *testing.B) {
	for _, sz := range scaleSizes {
		b.Run(sz.name, func(b *testing.B) {
			f := scaleFixtureFor(b, sz.cells)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := paws.Train(f.pts, paws.TrainOptions{
					Kind: paws.DTBiW, Thresholds: 5, Members: 5, Seed: 53, Workers: 0,
				}); err != nil {
					b.Fatal(err)
				}
			}
			secPerOp := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(len(f.pts))/secPerOp, "points/s")
		})
	}
}

// BenchmarkScaleRiskMap measures park-wide risk + uncertainty map generation
// with a cold memo, like BenchmarkRiskMapGen but across the size ladder.
func BenchmarkScaleRiskMap(b *testing.B) {
	for _, sz := range scaleSizes {
		b.Run(sz.name, func(b *testing.B) {
			f := scaleFixtureFor(b, sz.cells)
			prev := len(f.sc.Data.Steps) - 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pm, err := paws.NewPlannerModel(f.m, f.sc.Data, prev)
				if err != nil {
					b.Fatal(err)
				}
				risk, unc, err := pm.MapsCtx(context.Background(), 2)
				if err != nil {
					b.Fatal(err)
				}
				if len(risk) != sz.cells || len(unc) != sz.cells {
					b.Fatal("short map")
				}
			}
			perOpCells(b, sz.cells)
		})
	}
}

// BenchmarkScalePlan measures Service.Plan with hierarchical targeting (the
// /v1/plan hot path) against a registered model. Registration — including
// the planner feature matrix — happens once, as in a serving process.
func BenchmarkScalePlan(b *testing.B) {
	for _, sz := range scaleSizes {
		b.Run(sz.name, func(b *testing.B) {
			f := scaleFixtureFor(b, sz.cells)
			svc := paws.NewService(paws.WithWorkers(0))
			ctx := context.Background()
			if _, err := svc.AddModel(ctx, "m", f.m, f.sc.Data, len(f.sc.Data.Steps)-1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := svc.Plan(ctx, "m", 0, 0.3, paws.WithHierarchical(true))
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Routes) == 0 {
					b.Fatal("no routes")
				}
			}
			perOpCells(b, sz.cells)
		})
	}
}

// TestScaleSmoke is the CI smoke test (scripts/bench_scale_smoke.sh): the
// full pipeline on a 10^4-cell park, with risk maps and hierarchical plans
// byte-compared across worker counts 1 and 8. Opt-in via PAWS_SCALE_SMOKE=1
// so ordinary `go test ./...` stays fast.
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("PAWS_SCALE_SMOKE") == "" {
		t.Skip("set PAWS_SCALE_SMOKE=1 to run the scale smoke test")
	}
	f := scaleFixtureFor(t, 10_000)
	type outputs struct {
		risk, unc []float64
		plan      *paws.PlanResult
	}
	run := func(workers int) outputs {
		svc := paws.NewService(paws.WithWorkers(workers))
		ctx := context.Background()
		if _, err := svc.AddModel(ctx, "m", f.m, f.sc.Data, len(f.sc.Data.Steps)-1); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		risk, unc, err := svc.RiskMaps(ctx, "m", 2)
		if err != nil {
			t.Fatalf("workers=%d riskmaps: %v", workers, err)
		}
		res, err := svc.Plan(ctx, "m", 0, 0.3, paws.WithHierarchical(true))
		if err != nil {
			t.Fatalf("workers=%d plan: %v", workers, err)
		}
		return outputs{risk, unc, res}
	}
	ref := run(1)
	got := run(8)
	if !reflect.DeepEqual(ref.risk, got.risk) || !reflect.DeepEqual(ref.unc, got.unc) {
		t.Fatal("risk/uncertainty maps differ between workers 1 and 8")
	}
	if !reflect.DeepEqual(ref.plan.Effort, got.plan.Effort) ||
		!reflect.DeepEqual(ref.plan.Cells, got.plan.Cells) ||
		!reflect.DeepEqual(ref.plan.Routes, got.plan.Routes) {
		t.Fatal("hierarchical plan differs between workers 1 and 8")
	}
	if !ref.plan.Hierarchical {
		t.Fatal("plan did not use hierarchical targeting")
	}
}

// TestScalePlanEndToEnd drives the real /v1/plan HTTP handler on a sized
// park — the million-cell acceptance check. Opt-in: PAWS_SCALE_E2E selects
// the size (1e4, 1e5 or 1e6).
func TestScalePlanEndToEnd(t *testing.T) {
	sel := os.Getenv("PAWS_SCALE_E2E")
	if sel == "" {
		t.Skip("set PAWS_SCALE_E2E=1e4|1e5|1e6 to run the end-to-end plan test")
	}
	cells := map[string]int{"1e4": 10_000, "1e5": 100_000, "1e6": 1_000_000}[sel]
	if cells == 0 {
		t.Fatalf("bad PAWS_SCALE_E2E %q", sel)
	}
	f := scaleFixtureFor(t, cells)
	svc := paws.NewService(paws.WithWorkers(0))
	if _, err := svc.AddModel(context.Background(), "m", f.m, f.sc.Data, len(f.sc.Data.Steps)-1); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(svc, serve.Config{})
	defer srv.Close(context.Background())

	body, _ := json.Marshal(serve.PlanRequest{Model: "m", Post: 0, Beta: 0.3})
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	start := time.Now()
	srv.ServeHTTP(rec, req)
	wall := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/plan status %d: %s", rec.Code, rec.Body.String())
	}
	var resp serve.PlanResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) == 0 || len(resp.Effort) != len(resp.Cells) || len(resp.Routes) == 0 {
		t.Fatalf("degenerate plan: %d cells, %d routes", len(resp.Cells), len(resp.Routes))
	}
	wantHier := cells >= paws.HierAutoCells
	if resp.Hierarchical != wantHier {
		t.Fatalf("hierarchical=%v at %d cells, want %v", resp.Hierarchical, cells, wantHier)
	}
	t.Logf("/v1/plan at %s cells: %d region cells, %d routes, objective %.4f, solve %.1f ms, HTTP wall %v",
		sel, len(resp.Cells), len(resp.Routes), resp.Objective, resp.RuntimeMS, wall)
}
